"""The full eight-table TPC-H schema, generated FK-consistently.

:mod:`repro.tpch.generator` covers the single-table window benchmarks;
the relational frontend (joins, CTEs, subqueries) needs the whole
schema. This module generates all eight TPC-H tables at a given scale
factor with consistent foreign keys — every ``l_orderkey`` exists in
``orders``, every ``(l_partkey, l_suppkey)`` pair exists in
``partsupp`` (Q9 joins on exactly that pair), nation/region are the
spec's fixed 25/5 rows — and with the value distributions the queries
depend on: ``p_name`` built from the spec's colour words (Q9 filters
``LIKE '%green%'``), ``o_comment`` seeded with ``special … requests``
(Q13), ``s_comment`` with ``Customer … Complaints`` (Q16), priorities,
segments, ship modes and brands drawn from the spec vocabularies.

dbgen itself is not redistributable, so values are drawn from seeded
numpy generators rather than dbgen's RNG streams: *row values* differ
from dbgen output, but the schema shapes match
:mod:`repro.tpch.dbgen` (`LINEITEM_COLUMNS` / `ORDERS_COLUMNS`) and
the distributions match the spec closely enough for every adapted
query in :mod:`repro.tpch.queries` to return non-trivial results.

Everything is deterministic in ``(scale_factor, seed)`` and cached, so
the engine under test and the pure-Python reference implementation
(:mod:`repro.tpch.reference`) consume the *same* Table objects.
"""

from __future__ import annotations

import datetime
from functools import lru_cache
from typing import Dict, List

import numpy as np

from repro.sql.catalog import Catalog
from repro.table.column import DataType
from repro.table.table import Table
from repro.tpch.generator import TPCH_END_DATE, TPCH_START_DATE

__all__ = ["tpch_tables", "tpch_catalog", "CURRENT_DATE"]

#: The spec's pseudo "today" used for l_returnflag / l_linestatus.
CURRENT_DATE = datetime.date(1995, 6, 17)

# Spec Section 4.2.3: the fixed nation and region rows.
_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

# Spec 4.2.2.13 vocabularies (subset large enough for the queries).
_COLORS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque",
    "black", "blanched", "blue", "blush", "brown", "burlywood",
    "burnished", "chartreuse", "chiffon", "chocolate", "coral",
    "cornflower", "cornsilk", "cream", "cyan", "dark", "deep", "dim",
    "dodger", "drab", "firebrick", "floral", "forest", "frosted",
    "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "indian", "ivory", "khaki", "lace", "lavender", "lawn",
    "lemon", "light", "lime", "linen", "magenta", "maroon", "medium",
    "metallic", "midnight", "mint", "misty", "moccasin", "navajo",
    "navy", "olive", "orange", "orchid", "pale", "papaya", "peach",
    "peru", "pink", "plum", "powder", "puff", "purple", "red", "rose",
    "rosy", "royal", "saddle", "salmon", "sandy", "seashell", "sienna",
    "sky", "slate", "smoke", "snow", "spring", "steel", "tan",
    "thistle", "tomato", "turquoise", "violet", "wheat", "white",
    "yellow",
]
_TYPE_S1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
_TYPE_S2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
_TYPE_S3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
_CONTAINER_S1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
_CONTAINER_S2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN",
                 "DRUM"]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
             "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
               "5-LOW"]
_INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "NONE",
                 "TAKE BACK RETURN"]
_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_NOISE_WORDS = [
    "carefully", "quickly", "furiously", "slyly", "blithely", "ironic",
    "regular", "express", "pending", "final", "bold", "even", "silent",
    "daring", "unusual", "deposits", "requests", "instructions",
    "accounts", "packages", "foxes", "pinto", "beans", "theodolites",
    "platelets", "ideas",
]


def _retail_price(partkey: int) -> float:
    """The spec's p_retailprice formula, in dollars."""
    return (90000 + (partkey // 10) % 20001 + 100 * (partkey % 1000)) \
        / 100.0


def _phone(rng: np.random.Generator, nationkey: int) -> str:
    a, b, c = rng.integers(100, 1000, size=3)
    return f"{10 + nationkey}-{a}-{b}-{c}"


def _comment(rng: np.random.Generator, words: int = 4) -> str:
    picks = rng.integers(0, len(_NOISE_WORDS), size=words)
    return " ".join(_NOISE_WORDS[i] for i in picks)


def _partsupp_suppliers(partkey: int, nsupp: int) -> List[int]:
    """The spec's four suppliers of a part (4.2.3, PS_SUPPKEY)."""
    return [(partkey + i * (nsupp // 4 + (partkey - 1) // nsupp))
            % nsupp + 1 for i in range(4)]


@lru_cache(maxsize=4)
def tpch_tables(scale_factor: float = 0.01,
                seed: int = 2022) -> Dict[str, Table]:
    """All eight TPC-H tables, FK-consistent, keyed by table name.

    Cached on ``(scale_factor, seed)`` — callers share Table objects
    and must not mutate them. SF 0.01 generates ~60k lineitem rows in
    about a second.
    """
    rng = np.random.default_rng(seed)
    nsupp = max(int(10_000 * scale_factor), 12)
    ncust = max(int(150_000 * scale_factor), 30)
    npart = max(int(200_000 * scale_factor), 40)
    norders = max(int(1_500_000 * scale_factor), 150)
    epoch = datetime.date(1970, 1, 1)
    start = (TPCH_START_DATE - epoch).days
    end = (TPCH_END_DATE - epoch).days

    tables: Dict[str, Table] = {}
    tables["region"] = Table.from_dict({
        "r_regionkey": (DataType.INT64, list(range(len(_REGIONS)))),
        "r_name": (DataType.STRING, list(_REGIONS)),
        "r_comment": (DataType.STRING,
                      [_comment(rng) for _ in _REGIONS]),
    }, name="region")
    tables["nation"] = Table.from_dict({
        "n_nationkey": (DataType.INT64, list(range(len(_NATIONS)))),
        "n_name": (DataType.STRING, [n for n, _ in _NATIONS]),
        "n_regionkey": (DataType.INT64, [r for _, r in _NATIONS]),
        "n_comment": (DataType.STRING,
                      [_comment(rng) for _ in _NATIONS]),
    }, name="nation")

    # supplier — a deterministic handful of comments carry the
    # "Customer ... Complaints" marker Q16 anti-joins on.
    s_nation = rng.integers(0, len(_NATIONS), size=nsupp)
    s_acctbal = np.round(rng.uniform(-999.99, 9999.99, size=nsupp), 2)
    s_comments = [_comment(rng, 5) for _ in range(nsupp)]
    for i in range(0, nsupp, max(nsupp // 5, 1)):
        s_comments[i] = (f"{_comment(rng, 2)} Customer "
                         f"{_comment(rng, 1)} Complaints")
    tables["supplier"] = Table.from_dict({
        "s_suppkey": (DataType.INT64, list(range(1, nsupp + 1))),
        "s_name": (DataType.STRING,
                   [f"Supplier#{i:09d}" for i in range(1, nsupp + 1)]),
        "s_address": (DataType.STRING,
                      [_comment(rng, 2) for _ in range(nsupp)]),
        "s_nationkey": (DataType.INT64, s_nation.tolist()),
        "s_phone": (DataType.STRING,
                    [_phone(rng, int(n)) for n in s_nation]),
        "s_acctbal": (DataType.FLOAT64, s_acctbal.tolist()),
        "s_comment": (DataType.STRING, s_comments),
    }, name="supplier")

    c_nation = rng.integers(0, len(_NATIONS), size=ncust)
    c_segment = rng.integers(0, len(_SEGMENTS), size=ncust)
    tables["customer"] = Table.from_dict({
        "c_custkey": (DataType.INT64, list(range(1, ncust + 1))),
        "c_name": (DataType.STRING,
                   [f"Customer#{i:09d}" for i in range(1, ncust + 1)]),
        "c_address": (DataType.STRING,
                      [_comment(rng, 2) for _ in range(ncust)]),
        "c_nationkey": (DataType.INT64, c_nation.tolist()),
        "c_phone": (DataType.STRING,
                    [_phone(rng, int(n)) for n in c_nation]),
        "c_acctbal": (DataType.FLOAT64, np.round(
            rng.uniform(-999.99, 9999.99, size=ncust), 2).tolist()),
        "c_mktsegment": (DataType.STRING,
                         [_SEGMENTS[i] for i in c_segment]),
        "c_comment": (DataType.STRING,
                      [_comment(rng, 5) for _ in range(ncust)]),
    }, name="customer")

    # part — names are five colour words (Q9: LIKE '%green%'), brands
    # tie into manufacturers the way the spec prescribes.
    p_mfgr_idx = rng.integers(1, 6, size=npart)
    p_brand_idx = rng.integers(1, 6, size=npart)
    p_names = []
    for _ in range(npart):
        picks = rng.choice(len(_COLORS), size=5, replace=False)
        p_names.append(" ".join(_COLORS[i] for i in picks))
    p_types = [
        f"{_TYPE_S1[a]} {_TYPE_S2[b]} {_TYPE_S3[c]}"
        for a, b, c in zip(rng.integers(0, len(_TYPE_S1), size=npart),
                           rng.integers(0, len(_TYPE_S2), size=npart),
                           rng.integers(0, len(_TYPE_S3), size=npart))]
    p_containers = [
        f"{_CONTAINER_S1[a]} {_CONTAINER_S2[b]}"
        for a, b in zip(rng.integers(0, len(_CONTAINER_S1), size=npart),
                        rng.integers(0, len(_CONTAINER_S2), size=npart))]
    tables["part"] = Table.from_dict({
        "p_partkey": (DataType.INT64, list(range(1, npart + 1))),
        "p_name": (DataType.STRING, p_names),
        "p_mfgr": (DataType.STRING,
                   [f"Manufacturer#{i}" for i in p_mfgr_idx]),
        "p_brand": (DataType.STRING,
                    [f"Brand#{m}{b}" for m, b in zip(p_mfgr_idx,
                                                     p_brand_idx)]),
        "p_type": (DataType.STRING, p_types),
        "p_size": (DataType.INT64,
                   rng.integers(1, 51, size=npart).tolist()),
        "p_container": (DataType.STRING, p_containers),
        "p_retailprice": (DataType.FLOAT64,
                          [_retail_price(k)
                           for k in range(1, npart + 1)]),
        "p_comment": (DataType.STRING,
                      [_comment(rng, 3) for _ in range(npart)]),
    }, name="part")

    ps_part: List[int] = []
    ps_supp: List[int] = []
    for partkey in range(1, npart + 1):
        for suppkey in _partsupp_suppliers(partkey, nsupp):
            ps_part.append(partkey)
            ps_supp.append(suppkey)
    npartsupp = len(ps_part)
    tables["partsupp"] = Table.from_dict({
        "ps_partkey": (DataType.INT64, ps_part),
        "ps_suppkey": (DataType.INT64, ps_supp),
        "ps_availqty": (DataType.INT64, rng.integers(
            1, 10_000, size=npartsupp).tolist()),
        "ps_supplycost": (DataType.FLOAT64, np.round(
            rng.uniform(1.0, 1000.0, size=npartsupp), 2).tolist()),
        "ps_comment": (DataType.STRING,
                       [_comment(rng, 4) for _ in range(npartsupp)]),
    }, name="partsupp")

    # orders + lineitem, generated together so o_orderstatus and
    # o_totalprice are consistent with the order's lines.
    o_custkey = rng.integers(1, ncust + 1, size=norders)
    o_orderdate = rng.integers(start, end - 151, size=norders)
    o_priority = rng.integers(0, len(_PRIORITIES), size=norders)
    o_clerk = rng.integers(1, max(norders // 15, 2), size=norders)
    o_comments = [_comment(rng, 4) for _ in range(norders)]
    # ~5% of comments match Q13's '%special%requests%' exclusion.
    for i in rng.choice(norders, size=max(norders // 20, 1),
                        replace=False):
        o_comments[i] = (f"{_comment(rng, 1)} special "
                         f"{_comment(rng, 1)} requests")
    lines_per_order = rng.integers(1, 8, size=norders)

    l_cols: Dict[str, list] = {name: [] for name in (
        "l_orderkey", "l_partkey", "l_suppkey", "l_linenumber",
        "l_quantity", "l_extendedprice", "l_discount", "l_tax",
        "l_returnflag", "l_linestatus", "l_shipdate", "l_commitdate",
        "l_receiptdate", "l_shipinstruct", "l_shipmode", "l_comment")}
    o_status: List[str] = []
    o_totalprice: List[float] = []
    current = (CURRENT_DATE - epoch).days
    retail = [0.0] + [_retail_price(k) for k in range(1, npart + 1)]
    for oi in range(norders):
        orderkey = oi + 1
        nlines = int(lines_per_order[oi])
        odate = int(o_orderdate[oi])
        partkeys = rng.integers(1, npart + 1, size=nlines)
        which_supp = rng.integers(0, 4, size=nlines)
        quantities = rng.integers(1, 51, size=nlines)
        discounts = np.round(rng.integers(0, 11, size=nlines) / 100.0, 2)
        taxes = np.round(rng.integers(0, 9, size=nlines) / 100.0, 2)
        shipdays = rng.integers(1, 122, size=nlines)
        commitdays = rng.integers(30, 91, size=nlines)
        receiptdays = rng.integers(1, 31, size=nlines)
        instr = rng.integers(0, len(_INSTRUCTIONS), size=nlines)
        modes = rng.integers(0, len(_MODES), size=nlines)
        flag_coin = rng.integers(0, 2, size=nlines)
        total = 0.0
        statuses = []
        for li in range(nlines):
            partkey = int(partkeys[li])
            suppkey = _partsupp_suppliers(partkey, nsupp)[
                int(which_supp[li])]
            qty = float(quantities[li])
            price = round(qty * retail[partkey], 2)
            discount = float(discounts[li])
            tax = float(taxes[li])
            shipdate = odate + int(shipdays[li])
            receiptdate = shipdate + int(receiptdays[li])
            linestatus = "O" if shipdate > current else "F"
            if receiptdate <= current:
                returnflag = "R" if flag_coin[li] else "A"
            else:
                returnflag = "N"
            l_cols["l_orderkey"].append(orderkey)
            l_cols["l_partkey"].append(partkey)
            l_cols["l_suppkey"].append(suppkey)
            l_cols["l_linenumber"].append(li + 1)
            l_cols["l_quantity"].append(qty)
            l_cols["l_extendedprice"].append(price)
            l_cols["l_discount"].append(discount)
            l_cols["l_tax"].append(tax)
            l_cols["l_returnflag"].append(returnflag)
            l_cols["l_linestatus"].append(linestatus)
            l_cols["l_shipdate"].append(epoch + datetime.timedelta(
                days=shipdate))
            l_cols["l_commitdate"].append(epoch + datetime.timedelta(
                days=odate + int(commitdays[li])))
            l_cols["l_receiptdate"].append(epoch + datetime.timedelta(
                days=receiptdate))
            l_cols["l_shipinstruct"].append(_INSTRUCTIONS[instr[li]])
            l_cols["l_shipmode"].append(_MODES[modes[li]])
            l_cols["l_comment"].append(_comment(rng, 2))
            total += price * (1 + tax) * (1 - discount)
            statuses.append(linestatus)
        if all(s == "F" for s in statuses):
            o_status.append("F")
        elif all(s == "O" for s in statuses):
            o_status.append("O")
        else:
            o_status.append("P")
        o_totalprice.append(round(total, 2))

    tables["orders"] = Table.from_dict({
        "o_orderkey": (DataType.INT64, list(range(1, norders + 1))),
        "o_custkey": (DataType.INT64, o_custkey.tolist()),
        "o_orderstatus": (DataType.STRING, o_status),
        "o_totalprice": (DataType.FLOAT64, o_totalprice),
        "o_orderdate": (DataType.DATE,
                        [epoch + datetime.timedelta(days=int(d))
                         for d in o_orderdate]),
        "o_orderpriority": (DataType.STRING,
                            [_PRIORITIES[i] for i in o_priority]),
        "o_clerk": (DataType.STRING,
                    [f"Clerk#{int(c):09d}" for c in o_clerk]),
        "o_shippriority": (DataType.INT64, [0] * norders),
        "o_comment": (DataType.STRING, o_comments),
    }, name="orders")
    tables["lineitem"] = Table.from_dict({
        "l_orderkey": (DataType.INT64, l_cols["l_orderkey"]),
        "l_partkey": (DataType.INT64, l_cols["l_partkey"]),
        "l_suppkey": (DataType.INT64, l_cols["l_suppkey"]),
        "l_linenumber": (DataType.INT64, l_cols["l_linenumber"]),
        "l_quantity": (DataType.FLOAT64, l_cols["l_quantity"]),
        "l_extendedprice": (DataType.FLOAT64,
                            l_cols["l_extendedprice"]),
        "l_discount": (DataType.FLOAT64, l_cols["l_discount"]),
        "l_tax": (DataType.FLOAT64, l_cols["l_tax"]),
        "l_returnflag": (DataType.STRING, l_cols["l_returnflag"]),
        "l_linestatus": (DataType.STRING, l_cols["l_linestatus"]),
        "l_shipdate": (DataType.DATE, l_cols["l_shipdate"]),
        "l_commitdate": (DataType.DATE, l_cols["l_commitdate"]),
        "l_receiptdate": (DataType.DATE, l_cols["l_receiptdate"]),
        "l_shipinstruct": (DataType.STRING, l_cols["l_shipinstruct"]),
        "l_shipmode": (DataType.STRING, l_cols["l_shipmode"]),
        "l_comment": (DataType.STRING, l_cols["l_comment"]),
    }, name="lineitem")
    return tables


def tpch_catalog(scale_factor: float = 0.01,
                 seed: int = 2022) -> Catalog:
    """A :class:`Catalog` over :func:`tpch_tables` output."""
    return Catalog(dict(tpch_tables(scale_factor, seed)))
