"""Loading real TPC-H dbgen ``.tbl`` files.

The synthetic generator (:mod:`repro.tpch.generator`) covers the
benchmarks; for users who do have dbgen output, this module loads the
pipe-separated ``lineitem.tbl`` / ``orders.tbl`` files into the same
table shapes, so every example and benchmark can run against genuine
TPC-H data (the paper's actual input)."""

from __future__ import annotations

import datetime
from pathlib import Path
from typing import List, Optional, Union

from repro.errors import SchemaError
from repro.table.column import DataType
from repro.table.schema import Field, Schema
from repro.table.table import Table

# Full dbgen column lists (SF-independent).
LINEITEM_COLUMNS = [
    ("l_orderkey", DataType.INT64),
    ("l_partkey", DataType.INT64),
    ("l_suppkey", DataType.INT64),
    ("l_linenumber", DataType.INT64),
    ("l_quantity", DataType.FLOAT64),
    ("l_extendedprice", DataType.FLOAT64),
    ("l_discount", DataType.FLOAT64),
    ("l_tax", DataType.FLOAT64),
    ("l_returnflag", DataType.STRING),
    ("l_linestatus", DataType.STRING),
    ("l_shipdate", DataType.DATE),
    ("l_commitdate", DataType.DATE),
    ("l_receiptdate", DataType.DATE),
    ("l_shipinstruct", DataType.STRING),
    ("l_shipmode", DataType.STRING),
    ("l_comment", DataType.STRING),
]

ORDERS_COLUMNS = [
    ("o_orderkey", DataType.INT64),
    ("o_custkey", DataType.INT64),
    ("o_orderstatus", DataType.STRING),
    ("o_totalprice", DataType.FLOAT64),
    ("o_orderdate", DataType.DATE),
    ("o_orderpriority", DataType.STRING),
    ("o_clerk", DataType.STRING),
    ("o_shippriority", DataType.INT64),
    ("o_comment", DataType.STRING),
]


def _parse_field(text: str, dtype: DataType):
    if text == "":
        return None
    if dtype is DataType.INT64:
        return int(text)
    if dtype is DataType.FLOAT64:
        return float(text)
    if dtype is DataType.DATE:
        return datetime.date.fromisoformat(text)
    return text


def load_tbl(path: Union[str, Path], columns, *,
             limit: Optional[int] = None, name: str = "") -> Table:
    """Load a dbgen ``.tbl`` file (pipe-separated, trailing ``|``).

    ``columns`` is a ``(name, DataType)`` list like
    :data:`LINEITEM_COLUMNS`; ``limit`` truncates after that many rows
    (dbgen files at SF 1 have 6M lineitem rows).
    """
    schema = Schema(Field(n, d) for n, d in columns)
    rows: List[list] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle):
            if limit is not None and len(rows) >= limit:
                break
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("|")
            if parts and parts[-1] == "":
                parts.pop()  # dbgen lines end with a trailing separator
            if len(parts) != len(columns):
                raise SchemaError(
                    f"{path}:{line_number + 1}: expected "
                    f"{len(columns)} fields, found {len(parts)}")
            rows.append([_parse_field(text, dtype)
                         for text, (_, dtype) in zip(parts, columns)])
    return Table.from_rows(schema, rows, name=name or Path(path).stem)


def load_lineitem(path: Union[str, Path], *,
                  limit: Optional[int] = None) -> Table:
    """Load ``lineitem.tbl`` with the full 16-column dbgen schema."""
    return load_tbl(path, LINEITEM_COLUMNS, limit=limit, name="lineitem")


def load_orders(path: Union[str, Path], *,
                limit: Optional[int] = None) -> Table:
    """Load ``orders.tbl`` with the full 9-column dbgen schema."""
    return load_tbl(path, ORDERS_COLUMNS, limit=limit, name="orders")
