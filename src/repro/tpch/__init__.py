"""Deterministic TPC-H-style data generation.

The paper evaluates on the TPC-H ``lineitem`` table loaded from dbgen
CSVs. dbgen itself is not redistributable here, so this package generates
the columns the paper's queries touch with the distributions the spec
prescribes (uniform part keys, date ranges derived from the order date,
retail-price formula). The experiments depend only on value distributions
and duplication factors, which this generator matches; see DESIGN.md for
the substitution note.

All generators are seeded and reproducible.
"""

from repro.tpch.dbgen import (
    LINEITEM_COLUMNS,
    ORDERS_COLUMNS,
    load_lineitem,
    load_orders,
    load_tbl,
)
from repro.tpch.generator import (
    TPCH_END_DATE,
    TPCH_START_DATE,
    lineitem,
    lineitem_arrays,
    orders,
    tpcc_results,
)
from repro.tpch.queries import BLOCKED, QUERIES
from repro.tpch.reference import REFERENCE
from repro.tpch.tables import tpch_catalog, tpch_tables

__all__ = [
    "BLOCKED",
    "LINEITEM_COLUMNS",
    "ORDERS_COLUMNS",
    "QUERIES",
    "REFERENCE",
    "TPCH_END_DATE",
    "TPCH_START_DATE",
    "lineitem",
    "lineitem_arrays",
    "load_lineitem",
    "load_orders",
    "load_tbl",
    "orders",
    "tpcc_results",
    "tpch_catalog",
    "tpch_tables",
]
