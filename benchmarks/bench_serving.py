"""Load-generate the ``repro.serve`` HTTP service end to end.

Three questions about the serving tier, answered over real sockets
(:class:`~repro.serve.ServerThread` + ``http.client`` keep-alive
connections on worker threads):

* **latency** — p50/p99 per-request wall time as concurrent clients
  grow on a warm, repeated-query workload (plan cache + structure
  cache both hot after the first hit);
* **overload** — with a deliberately tiny gateway, does the service
  shed (429/503) instead of stacking latency, and do interactive-class
  tenants keep admission priority over batch tenants while it sheds;
* **plan cache** — the repeated-query workload must show a non-zero
  hit rate through the full HTTP path (fingerprint → cached AST).

Results land in ``benchmarks/results/BENCH_serving.json``.
"""

import json
import threading
import time
from http.client import HTTPConnection

import pytest

from conftest import emit
from repro.bench.harness import BenchSeries, save_series_json, scaled
from repro.serve import QueryService, ServerThread, TenantPolicy, TenantRegistry
from repro.sql import Catalog, Session, SessionConfig
from repro.tpch import lineitem

#: Repeated statement → plan-cache hits after the first request.
SQL = ("SELECT l_orderkey, "
       "sum(l_extendedprice) OVER (ORDER BY l_shipdate "
       "ROWS BETWEEN 100 PRECEDING AND CURRENT ROW) FROM lineitem")


def _post(conn: HTTPConnection, path: str, payload: dict,
          headers: dict) -> int:
    body = json.dumps(payload).encode("utf-8")
    conn.request("POST", path, body=body,
                 headers={"Content-Type": "application/json", **headers})
    response = conn.getresponse()
    response.read()  # drain so keep-alive can reuse the socket
    return response.status


def _get_json(port: int, path: str) -> dict:
    conn = HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        return json.loads(conn.getresponse().read())
    finally:
        conn.close()


def _client(port: int, requests: int, tenant: str, latencies: list,
            statuses: list) -> None:
    """One keep-alive client issuing ``requests`` sequential queries."""
    conn = HTTPConnection("127.0.0.1", port, timeout=60)
    headers = {"x-repro-tenant": tenant}
    try:
        for _ in range(requests):
            start = time.perf_counter()
            status = _post(conn, "/v1/execute", {"sql": SQL}, headers)
            latencies.append(time.perf_counter() - start)
            statuses.append(status)
    finally:
        conn.close()


def _run_clients(port: int, clients: int, requests: int,
                 tenants=("bench",)):
    """Fan out keep-alive clients; returns (latencies, statuses) with
    per-thread lists merged (append-only, so no locking needed)."""
    lat = [[] for _ in range(clients)]
    st = [[] for _ in range(clients)]
    threads = [
        threading.Thread(target=_client,
                         args=(port, requests, tenants[i % len(tenants)],
                               lat[i], st[i]))
        for i in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return ([x for sub in lat for x in sub],
            [x for sub in st for x in sub])


def _percentile(values, q: float) -> float:
    ordered = sorted(values)
    index = min(int(q * (len(ordered) - 1) + 0.5), len(ordered) - 1)
    return ordered[index]


@pytest.fixture(scope="module")
def rows():
    return scaled(5_000)


def test_serving_load(rows):
    """Latency vs concurrency, overload shedding, plan-cache hits."""
    series = BenchSeries(
        f"Serving — repro.serve over lineitem (n = {rows})",
        ["stage", "clients", "requests", "ok", "shed",
         "p50_ms", "p99_ms", "rps"])

    # ------------------------------------------------------------------
    # Stage 1: p50/p99 vs concurrent clients, ample gateway.
    # ------------------------------------------------------------------
    config = SessionConfig(max_concurrent=8, max_queue=32, workers=1)
    session = Session(Catalog({"lineitem": lineitem(rows)}),
                      config=config)
    service = QueryService(session, own_session=True)
    with ServerThread(service) as handle:
        _run_clients(handle.port, 1, 2)  # warm caches + pool threads
        for clients in (1, 4, 8):
            requests = max(12 // clients, 3)
            start = time.perf_counter()
            latencies, statuses = _run_clients(handle.port, clients,
                                               requests)
            wall = time.perf_counter() - start
            ok = sum(1 for s in statuses if s == 200)
            shed = sum(1 for s in statuses if s in (429, 503))
            series.add("latency", clients, len(statuses), ok, shed,
                       round(_percentile(latencies, 0.50) * 1e3, 3),
                       round(_percentile(latencies, 0.99) * 1e3, 3),
                       round(len(statuses) / wall, 2))
            assert ok == len(statuses), f"unexpected statuses {statuses}"
        health = _get_json(handle.port, "/v1/healthz")
    service.close()

    plan_cache = health["plan_cache"]
    hit_rate = plan_cache["hit_ratio"]
    series.meta["plan_cache"] = plan_cache
    assert plan_cache["hits"] > 0 and hit_rate > 0.5, plan_cache

    # ------------------------------------------------------------------
    # Stage 2: overload a tiny gateway; interactive must out-admit
    # batch while the service sheds the rest.
    # ------------------------------------------------------------------
    config = SessionConfig(max_concurrent=1, max_queue=1,
                           queue_timeout=0.05, workers=1)
    session = Session(Catalog({"lineitem": lineitem(rows)}),
                      config=config)
    tenants = TenantRegistry(
        policies={"dash": TenantPolicy(priority="interactive"),
                  "etl": TenantPolicy(priority="batch")},
        clock=session.clock)
    service = QueryService(session, tenants=tenants, own_session=True)
    with ServerThread(service) as handle:
        _run_clients(handle.port, 1, 1, tenants=("dash",))  # warm
        per_tenant = {}
        results = {name: ([], []) for name in ("dash", "etl")}

        def hammer(name: str) -> None:
            lat, st = _run_clients(handle.port, 6, 6, tenants=(name,))
            results[name][0].extend(lat)
            results[name][1].extend(st)

        start = time.perf_counter()
        threads = [threading.Thread(target=hammer, args=(name,))
                   for name in results]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - start
        for name, (lat, st) in results.items():
            ok = sum(1 for s in st if s == 200)
            shed = sum(1 for s in st if s in (429, 503))
            per_tenant[name] = (ok, shed, len(st))
            series.add(f"overload:{name}", 6, len(st), ok, shed,
                       round(_percentile(lat, 0.50) * 1e3, 3),
                       round(_percentile(lat, 0.99) * 1e3, 3),
                       round(len(st) / wall, 2))
        health = _get_json(handle.port, "/v1/healthz")
    service.close()

    dash_ok, dash_shed, dash_n = per_tenant["dash"]
    etl_ok, etl_shed, etl_n = per_tenant["etl"]
    total_shed = dash_shed + etl_shed
    series.meta["gateway"] = health["gateway"]
    series.meta["shed_rate"] = round(total_shed / (dash_n + etl_n), 4)
    series.note("overload: gateway 1 slot + 1-deep queues; 12 clients "
                "must shed, and interactive (dash) admission must not "
                "trail batch (etl)")
    assert total_shed > 0, "overload stage never shed"
    assert dash_ok / dash_n >= etl_ok / etl_n, per_tenant

    emit(series)
    path = save_series_json(series, filename="BENCH_serving.json")
    print(f"  saved: {path}")
