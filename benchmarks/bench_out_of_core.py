"""Out-of-core window execution: a table larger than the budget.

The acceptance claim for the memory governor's degradation ladder: a
window query over a table ~2x the session budget completes through
partition-at-a-time spill execution, produces *bit-identical* results
to the unbudgeted in-memory run, and its Python-heap high-water mark
(tracemalloc, numpy included) stays well under the table size — the
working set is the sort order, one result column and one partition at
a time, not the wide table. The wide payload columns stand in for the
realistic case where the query touches a slice of a big table.

Artifact: ``benchmarks/results/BENCH_out_of_core.json`` with runtime
and peak-RSS per mode plus the budget/table-size knobs.
"""

import tracemalloc

import numpy as np

from conftest import emit
from repro.bench.harness import BenchSeries, measure, save_series_json, \
    scaled
from repro.resilience.memory import table_bytes
from repro.sql import Catalog, Session, SessionConfig
from repro.table import DataType, Table

SQL = """
    select g, sum(v) over w as s
    from t
    window w as (partition by g order by o
                 rows between 50 preceding and current row)
"""

#: Peak-heap ceiling relative to the session budget for the spilling
#: run. The in-memory result column + sort order alone are ~0.4x the
#: budget at this shape; 1.25x leaves room for partition intermediates
#: while still proving the table itself never sat on the heap.
PEAK_FACTOR = 1.25


def _wide_table(n: int) -> Table:
    """~170 bytes/row: 3 live columns + 16 payload columns the query
    never touches (the 'big table, narrow query' shape)."""
    rng = np.random.default_rng(7)
    columns = {
        "g": (DataType.INT64, rng.integers(0, 64, n)),
        "o": (DataType.INT64, rng.integers(0, 1 << 40, n)),
        "v": (DataType.FLOAT64, rng.normal(size=n)),
    }
    for i in range(16):
        columns[f"pay{i}"] = (DataType.FLOAT64, rng.normal(size=n))
    return Table.from_dict(columns, name="t")


def test_out_of_core_larger_than_memory():
    n = scaled(200_000, minimum=20_000)
    table = _wide_table(n)
    nbytes = table_bytes(table)
    budget = nbytes // 2  # the table is 2x the session budget
    catalog = Catalog({"t": table})

    plain = Session(catalog)
    oracle = plain.execute(SQL)
    oracle_values = [column.to_list() for column in oracle.columns]
    in_memory_seconds = measure(lambda: plain.execute(SQL), repeats=3,
                                warmup=False)
    plain.close()

    session = Session(catalog, config=SessionConfig(
        memory_budget_bytes=budget))
    ooc_seconds = measure(lambda: session.execute(SQL), repeats=3,
                          warmup=True)
    # One more traced run for the high-water mark. The table and the
    # oracle were allocated before tracing starts, so the peak is the
    # query's own working set — which is the whole point.
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        result = session.execute(SQL)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not was_tracing:
            tracemalloc.stop()

    # Bit-identical to the in-memory oracle, column by column.
    for column, expected in zip(result.columns, oracle_values):
        assert column.to_list() == expected
    stats = session.memory.stats()
    assert result.stats.strategies == ["out-of-core"]
    assert stats.partition_spills > 0
    assert stats.partition_reloads == stats.partition_spills
    assert peak < PEAK_FACTOR * budget, (
        f"peak {peak:,} B >= {PEAK_FACTOR} x budget {budget:,} B")
    session.close()

    series = BenchSeries(
        "Out-of-core window execution — table 2x the session budget",
        ["mode", "seconds", "peak_bytes", "partition_spills",
         "spilled_bytes"])
    series.meta["rows"] = n
    series.meta["table_bytes"] = nbytes
    series.meta["budget_bytes"] = budget
    series.meta["peak_factor_limit"] = PEAK_FACTOR
    series.add("in-memory", in_memory_seconds, None, 0, 0)
    series.add("out-of-core", ooc_seconds, int(peak),
               stats.partition_spills, stats.partition_spill_bytes)
    series.note(f"peak is tracemalloc high-water of the spilling run; "
                f"{peak / budget:.2f}x the budget, "
                f"{peak / nbytes:.2f}x the table")
    series.note("results verified bit-identical to the unbudgeted "
                "in-memory run")
    emit(series)
    path = save_series_json(series, filename="BENCH_out_of_core.json")
    print(f"  saved: {path}")
