"""Cost of the resilience stack on the hot path.

The guardrails are designed to be free when idle: with ``verify_rate=0``
the shadow-verification gate is a single attribute test per evaluated
call, a closed circuit breaker is one lock round-trip per protected
operation, and gateway admission with a free slot is one lock
round-trip per query. This benchmark measures the warm-serving path
(structures cached, probe-only) three ways — no guardrails, guardrails
armed with verification off, and 100% shadow verification — and asserts
the middle configuration stays within noise of the first.
"""

import pytest

from conftest import emit
from repro.bench.harness import BenchSeries, measure, scaled
from repro.cache import StructureCache
from repro.resilience import BreakerRegistry, ExecutionContext, activate
from repro.tpch import lineitem
from repro.window import (
    FrameSpec,
    WindowCall,
    WindowSpec,
    current_row,
    preceding,
    window_query,
)
from repro.window.frame import OrderItem

#: Generous noise ceiling for "no measurable overhead": warm probe runs
#: jitter by a few percent on shared CI machines.
MAX_IDLE_OVERHEAD = 1.30


@pytest.fixture(scope="module")
def table():
    return lineitem(scaled(10_000))


def _plan():
    spec = WindowSpec(order_by=(OrderItem("l_shipdate"),),
                      frame=FrameSpec.rows(preceding(499), current_row()))
    calls = [
        WindowCall("percentile_disc", ("l_extendedprice",), fraction=0.5),
        WindowCall("count", ("l_partkey",), distinct=True),
    ]
    return calls, spec


def test_resilience_overhead_when_idle(table):
    """verify_rate=0 + closed breakers vs no guardrails at all."""
    calls, spec = _plan()
    n = table.num_rows
    with StructureCache() as cache:
        window_query(table, calls, spec, cache=cache)  # warm the cache

        def run():
            window_query(table, calls, spec, cache=cache)

        baseline = measure(run, repeats=5, warmup=True)

        guarded_ctx = ExecutionContext(verify_rate=0.0,
                                       breakers=BreakerRegistry())
        with activate(guarded_ctx):
            guarded = measure(run, repeats=5, warmup=True)

        shadow_ctx = ExecutionContext(verify_rate=1.0)
        with activate(shadow_ctx):
            shadow = measure(run, repeats=3, warmup=True)

    series = BenchSeries(
        f"Resilience overhead — warm window query (n = {n})",
        ["configuration", "seconds", "vs_baseline"])
    series.add("no guardrails", baseline, 1.0)
    series.add("breakers + verify_rate=0", guarded, guarded / baseline)
    series.add("shadow verify 100%", shadow, shadow / baseline)
    series.meta["verifications"] = shadow_ctx.health.verifications
    series.note("verify_rate=0 must be free: the gate is one attribute "
                "test per call, a closed breaker one lock round-trip")
    emit(series)

    assert guarded_ctx.health.verifications == 0
    assert shadow_ctx.health.verifications > 0
    assert shadow_ctx.health.verification_failures == 0
    assert guarded <= baseline * MAX_IDLE_OVERHEAD, (
        f"idle guardrails cost {guarded / baseline:.2f}x "
        f"(limit {MAX_IDLE_OVERHEAD}x)")
