"""Cost of the observability hooks on the warm window-query path.

The tracing design contract is "free when off": every instrumentation
point guards with one ``tracer.enabled`` attribute test (the shared
:data:`~repro.obs.NULL_TRACER`), and the always-on per-query telemetry
is a handful of locked integer bumps per query — not per row. This
benchmark measures the same warm, structure-cached window query as
``bench_resilience_overhead.py`` three ways — ambient context, a
guarded context with tracing disabled, and a guarded context with a
live :class:`~repro.obs.Tracer` — and asserts the disabled
configuration stays within the ±3% budget documented in DESIGN.md §7.
"""

import pytest

from conftest import emit
from repro.bench.harness import BenchSeries, measure, save_series_json, scaled
from repro.cache import StructureCache
from repro.obs import Tracer
from repro.resilience import BreakerRegistry, ExecutionContext, activate
from repro.tpch import lineitem
from repro.window import (
    FrameSpec,
    WindowCall,
    WindowSpec,
    current_row,
    preceding,
    window_query,
)
from repro.window.frame import OrderItem

#: DESIGN.md §7 overhead budget for disabled tracing, plus measurement
#: noise headroom on shared CI machines (best-of-7 keeps jitter small).
MAX_DISABLED_OVERHEAD = 1.03
NOISE_HEADROOM = 1.05


@pytest.fixture(scope="module")
def table():
    return lineitem(scaled(10_000))


def _plan():
    spec = WindowSpec(order_by=(OrderItem("l_shipdate"),),
                      frame=FrameSpec.rows(preceding(499), current_row()))
    calls = [
        WindowCall("percentile_disc", ("l_extendedprice",), fraction=0.5),
        WindowCall("count", ("l_partkey",), distinct=True),
    ]
    return calls, spec


def test_observability_overhead(table):
    """Disabled tracing vs no context at all, plus the traced cost."""
    calls, spec = _plan()
    n = table.num_rows
    with StructureCache() as cache:
        window_query(table, calls, spec, cache=cache)  # warm the cache

        def run():
            window_query(table, calls, spec, cache=cache)

        baseline = measure(run, repeats=7, warmup=True)

        disabled_ctx = ExecutionContext(breakers=BreakerRegistry())
        with activate(disabled_ctx):
            disabled = measure(run, repeats=7, warmup=True)

        tracer = Tracer(max_spans=1_000_000)
        traced_ctx = ExecutionContext(breakers=BreakerRegistry(),
                                      tracer=tracer)
        with activate(traced_ctx):
            traced = measure(run, repeats=3, warmup=True)
        tracer.finish()

    series = BenchSeries(
        f"Observability overhead — warm window query (n = {n})",
        ["configuration", "seconds", "vs_baseline"])
    series.add("ambient (no context)", baseline, 1.0)
    series.add("tracing disabled", disabled, disabled / baseline)
    series.add("tracing enabled", traced, traced / baseline)
    series.meta["budget"] = MAX_DISABLED_OVERHEAD
    series.meta["trace_spans"] = sum(1 for _ in tracer.root.walk())
    series.meta["probes"] = len(tracer.root.find_all("probe"))
    series.note("disabled tracing must be one attribute test per hook: "
                "the NULL_TRACER's enabled flag")
    emit(series)
    path = save_series_json(series, filename="BENCH_observability.json")
    print(f"  saved: {path}")

    assert tracer.root.find_all("probe"), "traced run recorded no spans"
    assert disabled <= baseline * MAX_DISABLED_OVERHEAD * NOISE_HEADROOM, (
        f"disabled tracing cost {disabled / baseline:.3f}x "
        f"(budget {MAX_DISABLED_OVERHEAD}x)")
