"""Figure 14 — execution-phase breakdown of a framed distinct count.

The paper profiles a running COUNT DISTINCT on TPC-H SF10 (3.3s total in
Hyper): partition/sort setup, the Algorithm 1 phases (populate, sort,
prevIdcs), merge-sort-tree layer construction, and result computation.
"""

import pytest

from conftest import emit
from repro.bench.figures import fig14_cost_breakdown
from repro.bench.harness import scaled
from repro.bench.profiling import distinct_count_phases
from repro.tpch import lineitem_arrays


@pytest.fixture(scope="module")
def arrays():
    return lineitem_arrays(scaled(200_000))


def test_distinct_count_pipeline(benchmark, arrays):
    n = len(arrays["l_partkey"])
    benchmark.pedantic(
        distinct_count_phases,
        args=(arrays["l_shipdate"], arrays["l_partkey"], n),
        rounds=1, iterations=1)


def test_figure14_breakdown(benchmark):
    series = benchmark.pedantic(fig14_cost_breakdown, rounds=1,
                                iterations=1)
    emit(series)
    fractions = {row[0]: row[2] for row in series.rows}
    # Shape: sorting + tree building + probing dominate; the linear
    # passes (populate, prevIdcs, materialize) are comparatively small.
    heavy = (fractions["sort array"] + fractions["build tree layers"]
             + fractions["compute results"] + fractions["sort window order"])
    assert heavy > 0.7, f"heavy phases should dominate, got {heavy:.2f}"
    light = fractions["populate array"] + fractions["compute prevIdcs"]
    assert light < 0.25, f"linear passes should be small, got {light:.2f}"
