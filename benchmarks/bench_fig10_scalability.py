"""Figure 10 — throughput of holistic functions vs input size.

Frame = 5% of the input. Median / rank / lead / distinct count across
merge sort tree, incremental, order statistic tree and naive algorithms.
Measured single-thread wall times on scaled-down inputs, plus the
calibrated 20-core simulation at the paper's full sizes.

Paper result: MST ramps until ~0.8M rows (enough 20k-tuple tasks for 40
threads) and peaks at 9.5M tuples/s; the order statistic tree degrades
once the frame nears the task size (~0.35M rows); naive and incremental
median never exceed 0.6M tuples/s; incremental distinct count is the
only close competitor until cache effects hit at 1.2M rows.
"""

import math

import pytest

from conftest import emit
from repro.bench.figures import fig10_scalability, fig10_simulated_sweep
from repro.bench.harness import scaled
from repro.tpch import lineitem
from repro.window import (
    FrameSpec,
    WindowCall,
    WindowSpec,
    current_row,
    preceding,
    window_query,
)
from repro.window.frame import OrderItem


@pytest.fixture(scope="module")
def table():
    return lineitem(scaled(10_000))


@pytest.fixture(scope="module")
def spec(table):
    frame = max(table.num_rows // 20, 1)
    return WindowSpec(order_by=(OrderItem("l_shipdate"),),
                      frame=FrameSpec.rows(preceding(frame), current_row()))


@pytest.mark.parametrize("algorithm", ["mst", "incremental", "ostree"])
def test_median_5pct_frame(benchmark, table, spec, algorithm):
    call = WindowCall("percentile_disc", ("l_extendedprice",), fraction=0.5,
                      algorithm=algorithm)
    benchmark(window_query, table, [call], spec)


@pytest.mark.parametrize("algorithm", ["mst", "incremental"])
def test_distinct_count_5pct_frame(benchmark, table, spec, algorithm):
    call = WindowCall("count", ("l_partkey",), distinct=True,
                      algorithm=algorithm)
    benchmark(window_query, table, [call], spec)


def test_rank_mst(benchmark, table, spec):
    call = WindowCall("rank", order_by=(OrderItem("l_extendedprice"),),
                      algorithm="mst")
    benchmark(window_query, table, [call], spec)


def test_lead_mst(benchmark, table, spec):
    call = WindowCall("lead", ("l_extendedprice",),
                      order_by=(OrderItem("l_extendedprice"),),
                      algorithm="mst")
    benchmark(window_query, table, [call], spec)


def test_figure10_series(benchmark):
    """Regenerate Figure 10: measured + simulated throughput curves."""
    series = benchmark.pedantic(fig10_scalability, rounds=1, iterations=1)
    emit(series)
    simulated = fig10_simulated_sweep()
    emit(simulated)

    # Shape assertions on the simulated full-size curves.
    by_algo = {}
    for algorithm, n, tps in simulated.rows:
        by_algo.setdefault(algorithm, {})[n] = tps
    mst = by_algo["mst"]
    # MST ramps up with input size until the machine saturates.
    assert mst[800_000] > mst[50_000] * 2
    # MST beats the serial-state competitors at full size for medians.
    assert mst[2_000_000] > by_algo["incremental_median"][2_000_000] * 10
    assert mst[2_000_000] > by_algo["naive_median"][2_000_000] * 100
    assert mst[2_000_000] > by_algo["ostree_median"][2_000_000]
    # The order statistic tree degrades as frames (5% of n) approach the
    # 20k task size, i.e. beyond ~0.35M rows it falls off its own peak.
    ostree = by_algo["ostree_median"]
    assert ostree[800_000] > ostree[2_000_000]

    # Measured sanity: every MST configuration actually ran (the
    # MST is never skipped by the runtime-projection guard, unlike the
    # quadratic competitors at large sizes). Measured *asymptotics* are
    # asserted by the Table 1 slope fits, where the running frame makes
    # the quadratic term unmissable; at a 5% frame and CPython-feasible
    # sizes, fixed per-row overheads dominate all algorithms.
    mst_rows = [r for r in series.rows if r[1] == "mst"]
    assert mst_rows
    assert all(not math.isnan(r[3]) for r in mst_rows)
