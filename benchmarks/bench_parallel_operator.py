"""Morsel-driven window execution: serial vs shared-pool workers.

Two workload shapes bracket the scheduler's strategies:

* **many-small** — hundreds of similar partitions; the scheduler
  bin-packs them into morsels and runs whole partitions on the pool
  (inter-partition, paper Section 5).
* **one-large** — a single dominant partition; the structure builds
  once and the per-row probe arrays fan out over the pool
  (intra-partition, Section 5.2).

Numbers are reported honestly: on CPython the speedup comes only from
the fraction of work inside GIL-releasing numpy kernels, and on a
single-core machine there is none to be had — ``meta.cpu_count`` is
saved next to the ratios so a 1.0x on a 1-core container reads as what
it is. The workers=1 configuration must stay within noise of the plain
serial path (the scheduler's only addition there is one strategy
decision per window group).
"""

import os

import pytest

from conftest import emit
from repro.bench.harness import BenchSeries, measure, save_series_json, scaled
from repro.parallel.scheduler import WindowScheduler
from repro.table import DataType, Table
from repro.window import (
    FrameSpec,
    WindowCall,
    WindowSpec,
    current_row,
    preceding,
    window_query,
)
from repro.window.frame import OrderItem

#: The scheduler's decision overhead at workers=1 (one cost-model call
#: per window group) must be unmeasurable.
MAX_SERIAL_OVERHEAD = 1.05

#: Acceptance floor for the many-small shape at 4 workers — only
#: enforceable where 4 cores exist; asserted softly below.
TARGET_SPEEDUP = 1.3


def _table(n: int, partitions: int, seed: int) -> Table:
    import numpy as np

    rng = np.random.default_rng(seed)
    return Table.from_dict({
        "g": (DataType.INT64,
              [int(v) for v in rng.integers(0, partitions, n)]),
        "o": (DataType.INT64, [int(v) for v in rng.integers(0, 10_000, n)]),
        "x": (DataType.INT64, [int(v) for v in rng.integers(0, 256, n)]),
        "y": (DataType.FLOAT64, [float(v) for v in rng.normal(size=n)]),
    }, name="t")


CALLS = [
    WindowCall("count", ("x",), distinct=True),
    WindowCall("percentile_disc", ("y",), fraction=0.5),
]

SPEC = WindowSpec(partition_by=("g",), order_by=(OrderItem("o"),),
                  frame=FrameSpec.rows(preceding(199), current_row()))


@pytest.fixture(scope="module")
def shapes():
    n = scaled(48_000)
    return {
        "many-small": _table(n, max(n // 120, 2), seed=1),
        "one-large": _table(n, 1, seed=2),
    }


def test_parallel_operator_speedup(shapes):
    series = BenchSeries(
        "Parallel window operator — serial vs shared-pool workers",
        ["shape", "workers", "strategy", "seconds", "speedup"])
    series.meta["cpu_count"] = os.cpu_count()
    series.meta["rows"] = {name: t.num_rows for name, t in shapes.items()}

    ratios = {}
    for name, table in shapes.items():
        baseline_result = window_query(table, CALLS, SPEC)
        baseline = measure(
            lambda: window_query(table, CALLS, SPEC),
            repeats=3, warmup=True)
        series.add(name, 0, "no scheduler", baseline, 1.0)
        for workers in (1, 2, 4):
            with WindowScheduler(workers=workers) as scheduler:
                result = window_query(table, CALLS, SPEC,
                                      parallel=scheduler)
                seconds = measure(
                    lambda: window_query(table, CALLS, SPEC,
                                         parallel=scheduler),
                    repeats=3, warmup=False)
                strategy = scheduler.stats().decisions[-1].strategy
            # Parallelism must be invisible in results, shape by shape.
            for i in range(-len(CALLS), 0):
                assert (result.columns[i].to_list()
                        == baseline_result.columns[i].to_list())
            ratios[(name, workers)] = baseline / seconds
            series.add(name, workers, strategy, seconds,
                       baseline / seconds)

    series.note("speedup is baseline/seconds; on CPython only the "
                "numpy probe kernels release the GIL, so cpu_count "
                "bounds what is achievable")
    emit(series)
    path = save_series_json(series, filename="BENCH_parallel.json")
    print(f"  saved: {path}")

    # workers=1 is the serial code path plus one strategy decision.
    for name in shapes:
        overhead = 1.0 / ratios[(name, 1)]
        assert overhead <= MAX_SERIAL_OVERHEAD, (
            f"{name}: workers=1 costs {overhead:.3f}x serial "
            f"(limit {MAX_SERIAL_OVERHEAD}x)")

    # The acceptance speedup needs real cores; on smaller machines the
    # honest number is still in BENCH_parallel.json.
    many_small_4 = ratios[("many-small", 4)]
    if (os.cpu_count() or 1) >= 4:
        assert many_small_4 >= TARGET_SPEEDUP, (
            f"many-small at 4 workers: {many_small_4:.2f}x "
            f"(target {TARGET_SPEEDUP}x)")
    else:
        print(f"  cpu_count={os.cpu_count()}: speedup target "
              f"{TARGET_SPEEDUP}x not enforced, measured "
              f"{many_small_4:.2f}x")
