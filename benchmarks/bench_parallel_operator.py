"""Morsel-driven window execution: serial vs shared-pool workers.

Two workload shapes bracket the scheduler's strategies:

* **many-small** — hundreds of similar partitions; the scheduler
  bin-packs them into morsels and runs whole partitions on the pool
  (inter-partition, paper Section 5).
* **one-large** — a single dominant partition; the structure builds
  once and the per-row probe arrays fan out over the pool
  (intra-partition, Section 5.2).

Each shape runs on both executors: the shared **thread** pool (speedup
bounded by the GIL-releasing numpy fraction) and the supervised
**process** pool (true multicore — whole partitions evaluate in child
processes over shared-memory columns, so the Python-side evaluation
work parallelises too).

Numbers are reported honestly: on CPython the thread speedup comes
only from the fraction of work inside GIL-releasing numpy kernels, the
process speedup additionally pays fork + shared-memory setup per
group, and on a single-core machine there is none to be had either way
— ``meta.cpu_count`` is saved next to the ratios so a 1.0x on a 1-core
container reads as what it is. The workers=1 configuration must stay
within noise of the plain serial path (the scheduler's only addition
there is one strategy decision per window group).

A final ``process-cold`` / ``process-warm`` pair measures the
session-lifetime table arena: a cold session pays fork + argsort +
per-column shared-memory copies on every run, a warm session attaches
the arena's segments zero-copy — the warm-over-cold ratio is the
amortization the arena buys and is asserted >= 1.5x where 4 cores
exist.
"""

import os

import pytest

from conftest import emit
from repro.bench.harness import BenchSeries, measure, save_series_json, scaled
from repro.parallel.scheduler import WindowScheduler
from repro.table import DataType, Table
from repro.window import (
    FrameSpec,
    WindowCall,
    WindowSpec,
    current_row,
    preceding,
    window_query,
)
from repro.window.frame import OrderItem

#: The scheduler's decision overhead at workers=1 (one cost-model call
#: per window group) must be unmeasurable.
MAX_SERIAL_OVERHEAD = 1.05

#: Acceptance floor for the many-small shape at 4 workers — only
#: enforceable where 4 cores exist; asserted softly below.
TARGET_SPEEDUP = 1.3

#: Acceptance floor for the process executor at 4 workers: child
#: processes dodge the GIL entirely, so with real cores the whole
#: evaluation scales, not just the numpy kernels.
TARGET_PROCESS_SPEEDUP = 2.0

#: Acceptance floor for the table arena's amortization claim: a warm
#: repeat of a setup-dominated query (no fork, no argsort, no column
#: copy — workers attach arena segments zero-copy) must beat a cold
#: session by this factor. Only enforceable with >= 4 real cores.
TARGET_WARM_OVER_COLD = 1.5


def _table(n: int, partitions: int, seed: int) -> Table:
    import numpy as np

    rng = np.random.default_rng(seed)
    return Table.from_dict({
        "g": (DataType.INT64,
              [int(v) for v in rng.integers(0, partitions, n)]),
        "o": (DataType.INT64, [int(v) for v in rng.integers(0, 10_000, n)]),
        "x": (DataType.INT64, [int(v) for v in rng.integers(0, 256, n)]),
        "y": (DataType.FLOAT64, [float(v) for v in rng.normal(size=n)]),
    }, name="t")


CALLS = [
    WindowCall("count", ("x",), distinct=True),
    WindowCall("percentile_disc", ("y",), fraction=0.5),
]

SPEC = WindowSpec(partition_by=("g",), order_by=(OrderItem("o"),),
                  frame=FrameSpec.rows(preceding(199), current_row()))

#: The cold/warm comparison wants a query cheap enough that per-query
#: setup (fork, stable argsort, per-column shared-memory copies)
#: dominates a cold session — that setup is exactly what the table
#: arena amortizes away on warm repeats.
CHEAP_CALLS = [WindowCall("sum", ("x",))]

CHEAP_SPEC = WindowSpec(partition_by=("g",), order_by=(OrderItem("o"),),
                        frame=FrameSpec.rows(preceding(9), current_row()))


@pytest.fixture(scope="module")
def shapes():
    n = scaled(48_000)
    return {
        "many-small": _table(n, max(n // 120, 2), seed=1),
        "one-large": _table(n, 1, seed=2),
    }


def test_parallel_operator_speedup(shapes):
    series = BenchSeries(
        "Parallel window operator — serial vs thread vs process workers",
        ["shape", "executor", "workers", "strategy", "seconds",
         "speedup"])
    series.meta["cpu_count"] = os.cpu_count()
    series.meta["rows"] = {name: t.num_rows for name, t in shapes.items()}

    ratios = {}
    for name, table in shapes.items():
        baseline_result = window_query(table, CALLS, SPEC)
        baseline = measure(
            lambda: window_query(table, CALLS, SPEC),
            repeats=3, warmup=True)
        series.add(name, "serial", 0, "no scheduler", baseline, 1.0)
        for executor in ("thread", "process"):
            for workers in (1, 2, 4):
                with WindowScheduler(workers=workers,
                                     executor=executor) as scheduler:
                    result = window_query(table, CALLS, SPEC,
                                          parallel=scheduler)
                    seconds = measure(
                        lambda: window_query(table, CALLS, SPEC,
                                             parallel=scheduler),
                        repeats=3, warmup=False)
                    stats = scheduler.stats()
                    strategy = stats.decisions[-1].strategy
                    # Honest numbers only: a degraded process group
                    # would be a thread measurement in disguise.
                    assert stats.degraded_groups == 0, stats.render()
                # Parallelism must be invisible in results, shape by
                # shape, on both executors.
                for i in range(-len(CALLS), 0):
                    assert (result.columns[i].to_list()
                            == baseline_result.columns[i].to_list())
                ratios[(name, executor, workers)] = baseline / seconds
                series.add(name, executor, workers, strategy, seconds,
                           baseline / seconds)

    # ------------------------------------------------------------------
    # cold vs warm process sessions: the table arena's amortization
    # claim. Cold = a fresh scheduler per run, so every run pays fork,
    # the stable argsort, the per-column shared-memory copies and the
    # pool teardown. Warm = repeat queries against a live scheduler
    # whose arena already holds the columns and the sort permutation.
    # ------------------------------------------------------------------
    cw_workers = 4 if (os.cpu_count() or 1) >= 4 else 2
    table = shapes["many-small"]
    cheap_baseline_result = window_query(table, CHEAP_CALLS, CHEAP_SPEC)
    cheap_baseline = measure(
        lambda: window_query(table, CHEAP_CALLS, CHEAP_SPEC),
        repeats=3, warmup=True)

    def cold_session():
        with WindowScheduler(workers=cw_workers, executor="process",
                             min_parallel_ops=0.0) as scheduler:
            window_query(table, CHEAP_CALLS, CHEAP_SPEC,
                         parallel=scheduler)

    cold = measure(cold_session, repeats=3, warmup=False)

    with WindowScheduler(workers=cw_workers, executor="process",
                         min_parallel_ops=0.0) as scheduler:
        warm_result = window_query(table, CHEAP_CALLS, CHEAP_SPEC,
                                   parallel=scheduler)
        warm = measure(
            lambda: window_query(table, CHEAP_CALLS, CHEAP_SPEC,
                                 parallel=scheduler),
            repeats=3, warmup=False)
        stats = scheduler.stats()
        strategy = stats.decisions[-1].strategy
        assert stats.degraded_groups == 0, stats.render()
        arena = scheduler.arena_stats()
        # The warm path must actually be warm: repeat queries attach
        # existing arena segments instead of re-copying columns.
        assert arena is not None and arena.hits > 0, arena
    assert (warm_result.columns[-1].to_list()
            == cheap_baseline_result.columns[-1].to_list())

    warm_over_cold = cold / warm
    series.add("many-small", "process-cold", cw_workers, strategy,
               cold, cheap_baseline / cold)
    series.add("many-small", "process-warm", cw_workers, strategy,
               warm, cheap_baseline / warm)
    series.meta["cold_warm"] = {
        "workers": cw_workers,
        "cold_seconds": cold,
        "warm_seconds": warm,
        "warm_over_cold": warm_over_cold,
    }

    series.note("speedup is baseline/seconds; on CPython only the "
                "numpy probe kernels release the GIL, so cpu_count "
                "bounds what threads achieve; process workers dodge "
                "the GIL but pay fork + shared-memory setup per group")
    series.note("process-cold/process-warm rows run a cheap sum query "
                "so per-session setup dominates: cold pays fork + "
                "argsort + column copies + teardown every run, warm "
                "attaches the session arena's segments zero-copy")
    emit(series)
    path = save_series_json(series, filename="BENCH_parallel.json")
    print(f"  saved: {path}")

    # workers=1 is the serial code path plus one strategy decision
    # (the process pool is not even started for a serial decision).
    for name in shapes:
        for executor in ("thread", "process"):
            overhead = 1.0 / ratios[(name, executor, 1)]
            assert overhead <= MAX_SERIAL_OVERHEAD, (
                f"{name}: workers=1 ({executor}) costs "
                f"{overhead:.3f}x serial (limit {MAX_SERIAL_OVERHEAD}x)")

    # The acceptance speedups need real cores; on smaller machines the
    # honest numbers are still in BENCH_parallel.json.
    many_small_4 = ratios[("many-small", "thread", 4)]
    process_4 = ratios[("many-small", "process", 4)]
    if (os.cpu_count() or 1) >= 4:
        assert many_small_4 >= TARGET_SPEEDUP, (
            f"many-small at 4 workers: {many_small_4:.2f}x "
            f"(target {TARGET_SPEEDUP}x)")
        assert process_4 >= TARGET_PROCESS_SPEEDUP, (
            f"many-small at 4 process workers: {process_4:.2f}x "
            f"(target {TARGET_PROCESS_SPEEDUP}x)")
        assert warm_over_cold >= TARGET_WARM_OVER_COLD, (
            f"warm arena session only {warm_over_cold:.2f}x faster "
            f"than cold (target {TARGET_WARM_OVER_COLD}x)")
    else:
        print(f"  cpu_count={os.cpu_count()}: speedup targets "
              f"{TARGET_SPEEDUP}x (thread) / {TARGET_PROCESS_SPEEDUP}x "
              f"(process) / {TARGET_WARM_OVER_COLD}x (warm-over-cold) "
              f"not enforced, measured {many_small_4:.2f}x / "
              f"{process_4:.2f}x / {warm_over_cold:.2f}x")
