"""TPC-H suite latency through the relational frontend.

Every runnable TPC-H query (18 of 22 — see :mod:`repro.tpch.queries`
for the four blocked ones) executes at SF 0.01 with tracing on, and the
trace spans split each query's wall time into hash-join build, probe
and CTE-materialization components. That split is the interesting
number: the frontend's job is to keep the join plumbing cheap relative
to the window/aggregate work the paper is actually about.

The JSON artifact (``BENCH_tpch.json``) carries one row per query so
CI runs can be diffed for per-query regressions.
"""

import pytest

from conftest import emit
from repro.bench.harness import (
    BenchSeries,
    bench_scale,
    measure,
    save_series_json,
)
from repro.sql.config import QueryOptions, SessionConfig
from repro.sql.executor import Session
from repro.tpch.queries import BLOCKED, QUERIES
from repro.tpch.tables import tpch_catalog

SCALE_FACTOR = 0.01 * bench_scale()


@pytest.fixture(scope="module")
def session():
    session = Session(tpch_catalog(SCALE_FACTOR),
                      config=SessionConfig.from_env())
    yield session
    session.close()


def _span_ms(trace, name):
    return sum(s.duration for s in trace.find_all(name)) * 1000.0


def test_tpch_suite_latency(session):
    """Per-query latency with the join build/probe/CTE time split."""
    series = BenchSeries(
        f"TPC-H suite — relational frontend (SF {SCALE_FACTOR:g})",
        ["query", "rows", "total_ms", "join_build_ms", "join_probe_ms",
         "cte_ms", "joins"])
    series.meta["scale_factor"] = SCALE_FACTOR
    series.meta["executor"] = SessionConfig.from_env().executor
    series.meta["blocked"] = sorted(BLOCKED)

    totals = {"total": 0.0, "build": 0.0, "probe": 0.0}
    for name in sorted(QUERIES, key=lambda q: int(q[1:])):
        sql = QUERIES[name]
        seconds = measure(lambda: session.execute(sql), repeats=2,
                          warmup=True)
        result = session.execute(sql, options=QueryOptions(trace=True))
        trace = result.trace
        build_ms = _span_ms(trace, "join.build")
        probe_ms = _span_ms(trace, "join.probe")
        cte_ms = _span_ms(trace, "cte.materialize")
        joins = len(trace.find_all("join.build"))
        series.add(name, result.num_rows, round(seconds * 1000.0, 3),
                   round(build_ms, 3), round(probe_ms, 3),
                   round(cte_ms, 3), joins)
        totals["total"] += seconds * 1000.0
        totals["build"] += build_ms
        totals["probe"] += probe_ms

        # The suite is a correctness gate too: every query returns rows.
        assert result.num_rows > 0, name

    series.note(f"blocked queries: {', '.join(sorted(BLOCKED))} "
                "(see repro.tpch.queries.BLOCKED for reasons)")
    series.note("join_*/cte_ms come from a separate traced run; "
                "total_ms is best-of-2 untraced")
    emit(series)
    path = save_series_json(series, "BENCH_tpch.json")
    print(f"  saved: {path}")

    # Sanity: the split actually measured something on a join-heavy
    # suite, and build+probe stay a fraction of total work.
    assert totals["build"] > 0 and totals["probe"] > 0
    assert len(series.rows) == len(QUERIES) >= 12
