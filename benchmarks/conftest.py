"""Shared benchmark fixtures and reporting helpers."""

import pytest

from repro.bench.harness import BenchSeries, save_series


def emit(series: BenchSeries) -> None:
    """Print a figure series and persist it under benchmarks/results/."""
    print()
    print(series)
    path = save_series(series)
    print(f"  saved: {path}")


@pytest.fixture(scope="session")
def lineitem_20k():
    from repro.tpch import lineitem
    return lineitem(20_000)


@pytest.fixture(scope="session")
def lineitem_5k():
    from repro.tpch import lineitem
    return lineitem(5_000)
