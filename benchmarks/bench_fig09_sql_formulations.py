"""Figure 9 — necessity of native framed-holistic support.

Framed median over lineitem: traditional SQL formulations (correlated
subquery, self join — both O(n^2) nested-loop plans), the Tableau-style
client-side table calculation, and the native naive / merge-sort-tree
algorithms behind the proposed SQL extension.

Paper result (20k rows, Hyper): native naive is 15x faster than the
client-side calc and 3x faster than the best SQL; the MST pushes the
advantage to 63x over the best SQL.
"""

import numpy as np
import pytest

from conftest import emit
from repro.baselines.tableau import tableau_window_percentile
from repro.bench.figures import fig09_sql_formulations
from repro.bench.harness import scaled
from repro.sql import Catalog, execute
from repro.tpch import lineitem
from repro.window import (
    FrameSpec,
    WindowCall,
    WindowSpec,
    current_row,
    preceding,
    window_query,
)
from repro.window.frame import OrderItem

FRAME = 999


@pytest.fixture(scope="module")
def table():
    return lineitem(scaled(2_000))


@pytest.fixture(scope="module")
def spec():
    return WindowSpec(order_by=(OrderItem("l_shipdate"),),
                      frame=FrameSpec.rows(preceding(FRAME), current_row()))


def test_native_mst_median(benchmark, table, spec):
    call = WindowCall("percentile_disc", ("l_extendedprice",), fraction=0.5,
                      algorithm="mst")
    benchmark(window_query, table, [call], spec)


def test_native_naive_median(benchmark, table, spec):
    call = WindowCall("percentile_disc", ("l_extendedprice",), fraction=0.5,
                      algorithm="naive")
    benchmark(window_query, table, [call], spec)


def test_tableau_client_calc(benchmark, table):
    order = np.argsort(table.column("l_shipdate").raw(), kind="stable")
    prices = [float(v) for v in
              np.asarray(table.column("l_extendedprice").raw())[order]]
    benchmark(tableau_window_percentile, prices, 0.5, FRAME)


def test_sql_correlated_subquery(benchmark, table):
    catalog = Catalog({"lineitem": table})
    sql = f"""
     with lineitem_rn as (
       select l_shipdate, l_extendedprice,
              row_number() over (order by l_shipdate) as rn
       from lineitem)
     select (
        select percentile_disc(0.5) within group (order by l_extendedprice)
        from lineitem_rn l2
        where l2.rn between l1.rn - {FRAME} and l1.rn)
     from lineitem_rn l1
    """
    benchmark.pedantic(execute, args=(sql, catalog), rounds=1, iterations=1)


def test_sql_self_join(benchmark, table):
    catalog = Catalog({"lineitem": table})
    sql = f"""
     with lineitem_rn as (
       select l_shipdate, l_extendedprice,
              row_number() over (order by l_shipdate) as rn
       from lineitem)
     select percentile_disc(0.5) within group (order by l2.l_extendedprice)
     from lineitem_rn l1 join lineitem_rn l2
       on l2.rn between l1.rn - {FRAME} and l1.rn
     group by l1.rn
    """
    benchmark.pedantic(execute, args=(sql, catalog), rounds=1, iterations=1)


def test_figure09_series(benchmark):
    """Regenerate the full Figure 9 comparison table."""
    series = benchmark.pedantic(fig09_sql_formulations, rounds=1,
                                iterations=1)
    emit(series)
    rows = {row[0]: row for row in series.rows}
    mst = rows["native merge sort tree"]
    naive = rows["native naive"]
    tableau = rows["Tableau-style client calc"]
    # Shape assertions from the paper's Section 6.2 narrative.
    assert mst[3] > 5.0, "MST must crush every traditional SQL formulation"
    assert naive[3] > 1.0, "even naive native beats traditional SQL"
    if scaled(2_000) >= 1_000:
        # The paper's Section 6.2 ordering: client-side calc beats the
        # SQL formulations but loses to both native algorithms. (The
        # naive-vs-MST flip itself needs larger frames than 999 rows in
        # CPython and is demonstrated in the Figure 11 bench.)
        assert tableau[3] < mst[3], "client calc slower than native MST"
        assert tableau[3] < naive[3], "client calc slower than naive"
