"""Ablations of the Section 5 implementation choices.

Beyond the paper's own Figure 13 parameter study, these benches isolate
the individual design decisions:

* fractional cascading on/off (Section 4.2) — same results, fewer
  binary-search steps per query;
* index width selection (Section 5.1) — int32 vs int64 levels;
* the two build paths (faithful multiway merge vs numpy lexsort);
* vectorised (batched) vs per-row scalar probing — the CPython-specific
  choice that stands in for Hyper's compiled probes;
* thread-pool probing of the shared read-only tree (Section 5.2),
  reported honestly under the GIL.
"""

import numpy as np
import pytest

from conftest import emit
from repro.bench.harness import BenchSeries, measure, scaled
from repro.mst.build import build_levels_numpy, build_levels_scalar
from repro.mst.tree import MergeSortTree
from repro.mst.vectorized import batched_count
from repro.parallel.threads import threaded_batched_count


@pytest.fixture(scope="module")
def keys():
    n = scaled(20_000)
    return np.random.default_rng(5).integers(0, n, size=n, dtype=np.int64)


@pytest.fixture(scope="module")
def queries(keys):
    n = len(keys)
    rng = np.random.default_rng(6)
    lo = rng.integers(0, n, size=n)
    hi = np.minimum(lo + rng.integers(0, n // 4, size=n), n)
    thr = rng.integers(0, n, size=n)
    return lo, hi, thr


def test_cascading_ablation(benchmark, keys, queries):
    """Cascaded vs plain scalar queries: identical results, and the
    cascaded walk does asymptotically fewer comparisons."""
    lo, hi, thr = queries
    sample = range(0, len(keys), max(len(keys) // 500, 1))
    cascaded = MergeSortTree(keys, fanout=32, sample_every=32,
                             cascading=True)
    plain = MergeSortTree(keys, fanout=32, sample_every=32,
                          cascading=False)

    def probe(tree):
        return [tree.count_below(int(lo[i]), int(hi[i]), int(thr[i]))
                for i in sample]

    t_cascaded = measure(lambda: probe(cascaded), repeats=2)
    t_plain = measure(lambda: probe(plain), repeats=2)
    assert probe(cascaded) == probe(plain)
    series = BenchSeries("Ablation — fractional cascading (scalar probes)",
                         ["variant", "seconds"])
    series.add("with cascading", t_cascaded)
    series.add("binary search per run", t_plain)
    emit(series)
    benchmark.pedantic(lambda: probe(cascaded), rounds=1, iterations=1)


def test_builder_ablation(benchmark, keys):
    """The numpy build must dominate the faithful scalar merge by a wide
    margin (that margin is why the vectorised path exists) while
    producing bit-identical levels."""
    # Fixed size: below ~2k rows interpreter constants blur the
    # comparison, so this ablation does not scale down.
    subset = np.random.default_rng(9).integers(0, 4_000, size=4_000)
    t_numpy = measure(lambda: build_levels_numpy(subset, fanout=2),
                      repeats=2)
    t_scalar = measure(lambda: build_levels_scalar(subset, fanout=2))
    a = build_levels_numpy(subset, fanout=2)
    b = build_levels_scalar(subset, fanout=2)
    for la, lb in zip(a.keys, b.keys):
        assert np.array_equal(la, lb)
    series = BenchSeries("Ablation — tree build paths",
                         ["builder", "seconds"])
    series.add("numpy lexsort per level", t_numpy)
    series.add("faithful multiway merge", t_scalar)
    emit(series)
    assert t_numpy < t_scalar
    benchmark(build_levels_numpy, subset, fanout=2)


def test_index_width_selection(benchmark, keys):
    """Section 5.1: small partitions use 32-bit indices."""
    small = MergeSortTree(keys, fanout=2)
    assert small.levels.keys[0].dtype == np.int32
    big_keys = keys.astype(np.int64) + 2**31
    big = MergeSortTree(big_keys, fanout=2)
    assert big.levels.keys[0].dtype == np.int64
    assert big.memory_bytes() > small.memory_bytes() * 1.5
    benchmark(MergeSortTree, keys, fanout=2)


def test_vectorized_vs_scalar_probe(benchmark, keys, queries):
    """The batched numpy probe amortises interpreter overhead across all
    rows; per-row scalar probing pays it n times."""
    lo, hi, thr = queries
    tree = MergeSortTree(keys, fanout=2)
    m = min(len(keys), scaled(3_000))

    def scalar():
        return [tree.count_below(int(lo[i]), int(hi[i]), int(thr[i]))
                for i in range(m)]

    def vectorized():
        return batched_count(tree.levels, lo[:m], hi[:m], thr[:m])

    t_scalar = measure(scalar)
    t_vec = measure(vectorized, repeats=2)
    assert list(vectorized()) == scalar()
    series = BenchSeries("Ablation — scalar vs batched probing",
                         ["variant", "seconds", "rows"])
    series.add("per-row scalar (cascaded)", t_scalar, m)
    series.add("numpy batched", t_vec, m)
    emit(series)
    assert t_vec < t_scalar
    benchmark.pedantic(vectorized, rounds=3, iterations=1)


def test_threaded_probe(benchmark, keys, queries):
    """Thread-pool probing of the shared tree: correct by construction;
    the measured speedup documents what the GIL leaves on the table."""
    lo, hi, thr = queries
    tree = MergeSortTree(keys, fanout=2)
    serial = measure(
        lambda: batched_count(tree.levels, lo, hi, thr), repeats=2)
    rows = []
    for workers in (1, 2, 4):
        t = measure(lambda w=workers: threaded_batched_count(
            tree.levels, lo, hi, thr, workers=w, task_size=2_000),
            repeats=2)
        rows.append((workers, t, serial / t))
    series = BenchSeries(
        "Ablation — thread-pool probe (GIL-bound; the scalability story "
        "lives in the cost model)",
        ["workers", "seconds", "speedup_vs_serial"])
    for row in rows:
        series.add(*row)
    emit(series)
    out = threaded_batched_count(tree.levels, lo, hi, thr, workers=4,
                                 task_size=2_000)
    assert np.array_equal(out, batched_count(tree.levels, lo, hi, thr))
    benchmark.pedantic(
        lambda: threaded_batched_count(tree.levels, lo, hi, thr,
                                       workers=4, task_size=2_000),
        rounds=3, iterations=1)
