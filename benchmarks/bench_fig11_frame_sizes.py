"""Figure 11 — framed median throughput vs frame size.

Paper result (SF1 lineitem, 6M rows): merge sort tree throughput is flat
(~9.3M tuples/s) regardless of frame size; naive falls below the MST at
frame ~130, incremental at ~700, the order statistic tree at ~20 000
(the task size); only the MST handles SQL's default running frame (6M
rows) in reasonable time.
"""

import math

import pytest

from conftest import emit
from repro.bench.figures import fig11_crossovers, fig11_frame_sizes
from repro.bench.harness import scaled
from repro.tpch import lineitem
from repro.window import (
    FrameSpec,
    WindowCall,
    WindowSpec,
    current_row,
    preceding,
    window_query,
)
from repro.window.frame import OrderItem


@pytest.fixture(scope="module")
def table():
    return lineitem(scaled(20_000))


def _spec(frame):
    return WindowSpec(order_by=(OrderItem("l_shipdate"),),
                      frame=FrameSpec.rows(preceding(frame), current_row()))


@pytest.mark.parametrize("frame", [10, 1_000, 100_000_000])
def test_mst_median_by_frame(benchmark, table, frame):
    call = WindowCall("percentile_disc", ("l_extendedprice",), fraction=0.5,
                      algorithm="mst")
    benchmark(window_query, table, [call], _spec(frame))


@pytest.mark.parametrize("frame", [10, 1_000])
def test_incremental_median_by_frame(benchmark, table, frame):
    call = WindowCall("percentile_disc", ("l_extendedprice",), fraction=0.5,
                      algorithm="incremental")
    benchmark(window_query, table, [call], _spec(frame))


def test_figure11_series(benchmark):
    series = benchmark.pedantic(fig11_frame_sizes, rounds=1, iterations=1)
    emit(series)
    crossovers = fig11_crossovers()
    emit(crossovers)

    # The modelled crossovers must land near the paper's within 2x.
    for algorithm, found, paper in crossovers.rows:
        assert paper / 2 <= found <= paper * 2, (algorithm, found, paper)

    # Measured MST stays within a modest band across frame sizes while
    # naive degrades by orders of magnitude.
    mst = [r for r in series.rows if r[0] == "mst"
           and not math.isnan(r[2])]
    times = [r[2] for r in mst]
    assert max(times) < min(times) * 6, "MST should be ~flat in frame size"
    # Naive must grow with the frame size while the MST stays flat:
    # compare their growth factors over the frames both measured.
    naive = {r[1]: r[2] for r in series.rows if r[0] == "naive"
             and not math.isnan(r[2])}
    mst_by_frame = {r[1]: r[2] for r in mst}
    if len(naive) >= 2:
        lo_f, hi_f = min(naive), max(naive)
        naive_growth = naive[hi_f] / naive[lo_f]
        mst_growth = mst_by_frame[hi_f] / mst_by_frame[lo_f]
        assert naive_growth > mst_growth * 1.5, (naive_growth, mst_growth)
