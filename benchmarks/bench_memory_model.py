"""Section 6.6 — merge sort tree memory consumption.

Validates the paper's closed-form element count against live trees and
reproduces the published 100M-element numbers (12.4 GB at f=16,k=4 vs
4.4 GB at f=k=32) plus the 2.75x overhead factor over the baseline
window operator footprint.
"""

import numpy as np
import pytest

from conftest import emit
from repro.bench.figures import memory_model_table
from repro.bench.harness import scaled
from repro.mst.stats import measured_vs_model
from repro.mst.tree import MergeSortTree


def test_memory_table(benchmark):
    series = benchmark.pedantic(memory_model_table, rounds=1, iterations=1)
    emit(series)
    for config, elements, gigabytes, paper_gb in series.rows:
        assert abs(gigabytes - paper_gb) < 0.05, (config, gigabytes)


@pytest.mark.parametrize("fanout,sampling", [(2, 32), (16, 4), (32, 32)])
def test_live_tree_vs_model(benchmark, fanout, sampling):
    n = scaled(20_000)
    keys = np.random.default_rng(0).integers(0, n, size=n, dtype=np.int64)

    def build():
        return MergeSortTree(keys, fanout=fanout, sample_every=sampling)

    tree = benchmark(build)
    report = measured_vs_model(tree)
    # The live layout retains level 0 and pads bridge rows per slab, so
    # allow a 2x band around the closed form.
    assert 0.4 < report["ratio"] < 2.0, report
