"""Table 1 — complexity classes of the holistic-aggregate algorithms.

Empirically fits log-log slopes of runtime vs input size under SQL's
default frame (UNBOUNDED PRECEDING .. CURRENT ROW, frame grows with n)
and checks the ordering the paper's Table 1 implies: the merge sort tree
scales log-linearly where naive recomputation is quadratic; the
incremental distinct count is linear but serial.

Interpreter-level constants blur the slopes at CPython-feasible sizes
(e.g. the incremental percentile's O(n^2) term is a C memmove that only
dominates at much larger n), so the assertions target the ordering, not
exact exponents; the full fitted table is printed for EXPERIMENTS.md.
"""

import pytest

from conftest import emit
from repro.bench.figures import table1_complexity
from repro.bench.harness import scaled
from repro.tpch import lineitem
from repro.window import (
    FrameSpec,
    WindowCall,
    WindowSpec,
    current_row,
    preceding,
    window_query,
)
from repro.window.frame import OrderItem


@pytest.fixture(scope="module")
def running_spec():
    return WindowSpec(order_by=(OrderItem("l_shipdate"),),
                      frame=FrameSpec.rows(preceding(10 ** 9),
                                           current_row()))


@pytest.mark.parametrize("algorithm", ["mst", "incremental"])
def test_running_distinct_count(benchmark, running_spec, algorithm):
    table = lineitem(scaled(4_000))
    call = WindowCall("count", ("l_partkey",), distinct=True,
                      algorithm=algorithm)
    benchmark(window_query, table, [call], running_spec)


@pytest.mark.parametrize("algorithm", ["mst", "ostree", "segtree"])
def test_running_median(benchmark, running_spec, algorithm):
    table = lineitem(scaled(4_000))
    call = WindowCall("percentile_disc", ("l_extendedprice",), fraction=0.5,
                      algorithm=algorithm)
    benchmark(window_query, table, [call], running_spec)


def test_table1_slopes(benchmark):
    series = benchmark.pedantic(table1_complexity, rounds=1, iterations=1)
    emit(series)
    slopes = {(r[0], r[1]): r[4] for r in series.rows}

    # Quadratic algorithms must fit clearly superlinear slopes.
    assert slopes[("dist. count", "naive")] > 1.5
    assert slopes[("percentile", "naive")] > 1.5
    assert slopes[("rank", "naive")] > 1.5
    # Log-linear algorithms stay well below quadratic.
    for key in [("dist. count", "MST"), ("percentile", "MST"),
                ("rank", "MST"), ("percentile", "order statistic tree")]:
        assert slopes[key] < 1.6, (key, slopes[key])
    # Naive must be clearly worse than the MST for every aggregate.
    for aggregate in ["dist. count", "percentile", "rank"]:
        assert slopes[(aggregate, "naive")] > slopes[(aggregate, "MST")]
