"""Windowed MODE — the algorithm comparison the paper's related work
implies ([13, 25], Wesley & Xu's mode coverage).

Mode cannot be phrased as a 2-d range count, so the merge sort tree does
not apply; the contenders are the sqrt-decomposition range-mode index,
the incremental counter table, and naive recomputation. The incremental
algorithm shows the same Section 3.2 pathologies as for distinct counts:
great on monotonic frames, degrading with non-monotonicity.
"""

import numpy as np
import pytest

from conftest import emit
from repro.bench.harness import BenchSeries, measure, scaled
from repro.tpch import lineitem
from repro.window import (
    FrameSpec,
    WindowCall,
    WindowSpec,
    current_row,
    following,
    preceding,
    window_query,
)
from repro.window.frame import OrderItem


@pytest.fixture(scope="module")
def table():
    return lineitem(scaled(5_000))


def _sliding(frame):
    return WindowSpec(order_by=(OrderItem("l_shipdate"),),
                      frame=FrameSpec.rows(preceding(frame), current_row()))


@pytest.mark.parametrize("algorithm", ["mst", "incremental", "naive"])
def test_mode_sliding(benchmark, table, algorithm):
    call = WindowCall("mode", ("l_partkey",), algorithm=algorithm)
    benchmark.pedantic(window_query, args=(table, [call], _sliding(200)),
                       rounds=2, iterations=1)


def test_mode_series(benchmark, table):
    """Frame-size sweep for every mode algorithm, with agreement check."""
    n = table.num_rows
    series = BenchSeries(
        f"Windowed MODE — algorithms vs frame size (n = {n})",
        ["algorithm", "frame", "seconds", "tuples_per_s"])
    reference = {}
    for frame in (20, 200, 2_000):
        for algorithm in ("mst", "incremental", "naive"):
            call = WindowCall("mode", ("l_partkey",), algorithm=algorithm)
            spec = _sliding(frame)
            out = []
            seconds = measure(
                lambda: out.append(window_query(table, [call], spec)
                                   .columns[-1].to_list()))
            series.add(algorithm, frame, seconds, n / seconds)
            key = frame
            if key in reference:
                assert out[-1] == reference[key], \
                    f"{algorithm} disagrees at frame {frame}"
            else:
                reference[key] = out[-1]
    emit(series)

    # Non-monotonic frames: incremental loses its overlap advantage.
    rng = np.random.default_rng(12)
    start = rng.integers(0, 400, size=n)
    end = np.maximum(400 - start, 0)
    jumpy = WindowSpec(order_by=(OrderItem("l_shipdate"),),
                       frame=FrameSpec.rows(preceding(start),
                                            following(end)))
    smooth = _sliding(400)
    times = {}
    for label, spec in [("monotonic", smooth), ("non-monotonic", jumpy)]:
        call = WindowCall("mode", ("l_partkey",), algorithm="incremental")
        times[label] = measure(lambda: window_query(table, [call], spec))
    nm = BenchSeries("Windowed MODE — incremental vs non-monotonicity",
                     ["frames", "seconds"])
    nm.add("monotonic (frame 400)", times["monotonic"])
    nm.add("non-monotonic (avg 400)", times["non-monotonic"])
    emit(nm)
    assert times["non-monotonic"] > times["monotonic"], \
        "losing frame overlap must cost the incremental algorithm"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
