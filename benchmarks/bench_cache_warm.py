"""Structure-cache warm serving: cold-vs-warm latency and eviction.

The serving pattern the cache targets (ROADMAP north star): one
long-lived session, the same windowed queries arriving repeatedly over
unchanged data. Cold runs pay the O(n log n) builds; warm runs are pure
probes against cached trees. A second experiment squeezes the byte
budget until structures evict, spill to disk and reload, measuring the
cost of serving from a budget smaller than the working set.
"""

import pytest

from conftest import emit
from repro.bench.harness import (
    BenchSeries,
    measure_with_memory,
    save_series_json,
    scaled,
)
from repro.cache import StructureCache, structure_bytes
from repro.tpch import lineitem
from repro.window import (
    FrameSpec,
    WindowCall,
    WindowSpec,
    current_row,
    preceding,
    window_query,
)
from repro.window.frame import OrderItem


@pytest.fixture(scope="module")
def table():
    return lineitem(scaled(10_000))


def _plan():
    spec = WindowSpec(order_by=(OrderItem("l_shipdate"),),
                      frame=FrameSpec.rows(preceding(499), current_row()))
    calls = [
        WindowCall("percentile_disc", ("l_extendedprice",), fraction=0.5),
        WindowCall("count", ("l_partkey",), distinct=True),
        WindowCall("rank"),
    ]
    return calls, spec


def test_cold_vs_warm(benchmark, table):
    """Cold build vs warm probe latency through one shared cache."""
    calls, spec = _plan()
    n = table.num_rows
    series = BenchSeries(
        f"Structure cache — cold vs warm serving (n = {n})",
        ["run", "seconds", "peak_bytes", "hits", "misses"])

    cache = StructureCache()
    results = []
    for run in ("cold", "warm", "warm2"):
        seconds, peak = measure_with_memory(
            lambda: results.append(
                window_query(table, calls, spec, cache=cache)))
        stats = cache.stats()
        series.add(run, seconds, peak, stats.hits, stats.misses)
    stats = cache.stats()
    assert stats.misses > 0 and stats.hits >= 2 * stats.misses, \
        "warm runs must be served from the cache"
    baseline = window_query(table, calls, spec)
    for result in results[:3]:
        for a, b in zip(result.columns[-3:], baseline.columns[-3:]):
            assert a.to_list() == b.to_list()
    series.meta["budget_bytes"] = None
    series.meta["bytes_in_use"] = stats.bytes_in_use
    series.note("warm = same query re-run through one StructureCache; "
                "structures probe-only after the first run")
    emit(series)
    print(f"  saved: {save_series_json(series)}")

    benchmark.pedantic(window_query, args=(table, calls, spec),
                       kwargs={"cache": cache}, rounds=3, iterations=1)
    cache.close()


def test_eviction_under_tight_budget(table):
    """Budget sweep: from everything-resident down to thrashing."""
    calls, spec = _plan()
    n = table.num_rows

    probe = StructureCache()
    window_query(table, calls, spec, cache=probe)
    working_set = probe.stats().bytes_in_use
    probe.close()

    series = BenchSeries(
        f"Structure cache — eviction under a byte budget (n = {n})",
        ["budget_bytes", "seconds", "evictions", "spills", "reloads",
         "bytes_in_use"])
    for fraction in (None, 1.0, 0.5, 0.1):
        budget = None if fraction is None else int(working_set * fraction)
        cache = StructureCache(budget_bytes=budget)
        window_query(table, calls, spec, cache=cache)  # populate
        seconds, _ = measure_with_memory(
            lambda: window_query(table, calls, spec, cache=cache))
        stats = cache.stats()
        series.add("unlimited" if budget is None else budget, seconds,
                   stats.evictions, stats.spills, stats.reloads,
                   stats.bytes_in_use)
        cache.close()
    series.meta["working_set_bytes"] = int(working_set)
    series.note("budgets below the working set trade probe-only serving "
                "for spill-and-reload on every run")
    emit(series)
    print(f"  saved: {save_series_json(series)}")


def test_structure_bytes_accounting(table):
    """The budget charges real measured bytes for every structure kind."""
    import numpy as np

    from repro.mst.tree import MergeSortTree

    tree = MergeSortTree(np.arange(scaled(10_000)))
    nbytes = structure_bytes(tree)
    assert nbytes >= tree.memory_bytes() * 0.5
    assert nbytes > 0
