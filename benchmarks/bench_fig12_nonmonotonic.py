"""Figure 12 — framed median under non-monotonic window frames.

Frame bounds follow the paper's pseudorandom construction
``m * mod(price * 7703, 499) preceding .. 500 - m * ... following``:
m = 0 is a monotonic 500-row frame; larger m shrinks the overlap between
consecutive frames.

Paper result: the incremental algorithm is competitive at m = 0, loses
to the merge sort tree at any m > 0, and falls below even the naive
algorithm as m grows (bookkeeping overhead); the MST is unaffected.
"""

import numpy as np
import pytest

from conftest import emit
from repro.bench.figures import fig12_nonmonotonic
from repro.bench.harness import scaled
from repro.tpch import lineitem
from repro.window import (
    FrameSpec,
    WindowCall,
    WindowSpec,
    following,
    preceding,
    window_query,
)
from repro.window.frame import OrderItem


@pytest.fixture(scope="module")
def table():
    return lineitem(scaled(5_000))


def _nonmonotonic_spec(table, m):
    price_cents = np.round(
        np.asarray(table.column("l_extendedprice").raw()) * 100
    ).astype(np.int64)
    jitter = (price_cents * 7703) % 499
    start = np.floor(m * jitter).astype(np.int64)
    end = np.maximum(500 - np.floor(m * jitter), 0).astype(np.int64)
    return WindowSpec(order_by=(OrderItem("l_shipdate"),),
                      frame=FrameSpec.rows(preceding(start), following(end)))


@pytest.mark.parametrize("m", [0.0, 1.0])
@pytest.mark.parametrize("algorithm", ["mst", "incremental"])
def test_median_nonmonotonic(benchmark, table, m, algorithm):
    call = WindowCall("percentile_disc", ("l_extendedprice",), fraction=0.5,
                      algorithm=algorithm)
    benchmark(window_query, table, [call], _nonmonotonic_spec(table, m))


def test_figure12_series(benchmark):
    series = benchmark.pedantic(fig12_nonmonotonic, rounds=1, iterations=1)
    emit(series)
    rows = {(r[0], r[1]): r for r in series.rows}
    ms = sorted({r[1] for r in series.rows})
    top = max(ms)

    # Measured: incremental slows down with m, MST does not.
    inc_first = rows[("incremental", 0.0)][2]
    inc_last = rows[("incremental", top)][2]
    assert inc_last > inc_first * 3, "incremental must degrade with m"
    mst_times = [rows[("mst", m)][2] for m in ms]
    assert max(mst_times) < min(mst_times) * 3, "MST unaffected by m"

    # Simulated at full scale: incremental falls below naive at high m.
    assert rows[("incremental", top)][5] < rows[("naive", top)][5]
    assert rows[("mst", top)][5] > rows[("incremental", top)][5] * 10
