"""Figure 13 — fanout f and pointer-sampling k parameter study.

Single-threaded merge sort tree build + windowed-rank probe over
uniformly random integers for a grid of (f, k). The paper (1M keys,
f 2..256, k 1..1024) finds the best runtime at f=16, k=4 but picks
f=k=32 for its ~2.8x lower memory at < 1.25x the best runtime.
"""

import numpy as np
import pytest

from conftest import emit
from repro.bench.figures import fig13_fanout_sampling
from repro.bench.harness import scaled
from repro.mst.stats import MemoryModel
from repro.mst.tree import MergeSortTree


@pytest.fixture(scope="module")
def keys():
    n = scaled(5_000)
    return np.random.default_rng(13).integers(0, n, size=n, dtype=np.int64)


@pytest.mark.parametrize("fanout,sampling", [(2, 32), (16, 4), (32, 32)])
def test_build_probe_cell(benchmark, keys, fanout, sampling):
    n = len(keys)
    frame = max(n // 20, 1)

    def job():
        tree = MergeSortTree(keys, fanout=fanout, sample_every=sampling)
        for i in range(0, n, 4):
            tree.count_below(max(i - frame, 0), i + 1, int(keys[i]))

    benchmark.pedantic(job, rounds=1, iterations=1)


def test_figure13_grid(benchmark):
    series = benchmark.pedantic(fig13_fanout_sampling, rounds=1,
                                iterations=1)
    emit(series)
    cells = {(r[0], r[1]): r for r in series.rows}

    # The paper's chosen configuration must be within a small factor of
    # the measured optimum...
    chosen = cells[(32, 32)]
    assert chosen[3] < 3.0, "f=k=32 should be within 3x of the best cell"
    # ... while using much less memory than the fastest small-f cells.
    small = MemoryModel(1_000_000, 16, 4).elements
    big = MemoryModel(1_000_000, 32, 32).elements
    assert small / big > 2.5, "paper: 12.4 GB vs 4.4 GB at 100M keys"


def test_memory_model_matches_paper(benchmark):
    """Section 6.6 closed-form check at the paper's 100M-element size."""
    def check():
        assert abs(MemoryModel(100_000_000, 16, 4).gigabytes - 12.4) < 0.05
        assert abs(MemoryModel(100_000_000, 32, 32).gigabytes - 4.4) < 0.05
    benchmark.pedantic(check, rounds=1, iterations=1)
