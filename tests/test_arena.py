"""The session-lifetime shared-memory table arena.

Covers the contract the operator and the memory governor rely on:
hit/miss/pin accounting, LRU eviction under the arena's own budget and
under governor pressure (with ``HealthCounters.arena_evictions``
visibility), ledger charge/refund under the ``"shm-arena"`` tag, the
governor-reclaimer hook (a hard reservation evicts arena entries
*before* shedding), content-token invalidation, the ``shm.copy``
cold-only trace span, and segment hygiene at close.
"""

import numpy as np
import pytest

from repro.errors import MemoryPressureError
from repro.obs import Tracer
from repro.parallel.arena import ARENA_TAG, TableArena
from repro.parallel.shm import arena_segments, owned_segments
from repro.resilience import ExecutionContext, activate
from repro.resilience.context import SimulatedClock
from repro.resilience.memory import MemoryGovernor


def arrays(seed: int, n: int = 1024):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 100, n).astype(np.int64),
            rng.random(n)]


def ambient_segments():
    # Under REPRO_EXECUTOR=process earlier tests in the same process
    # may have warmed the (never-closed) default scheduler's arena;
    # hygiene assertions are relative to that ambient set.
    return set(arena_segments())


# ----------------------------------------------------------------------
# acquisition: hits, misses, pins
# ----------------------------------------------------------------------
def test_miss_materializes_and_hit_reuses_the_same_segments():
    ambient = ambient_segments()
    with TableArena() as arena:
        data = arrays(1)
        lease = arena.lease()
        entry = lease.get(("col", "fp1"), lambda: data)
        assert [v.tolist() for v in entry.views] \
            == [a.tolist() for a in data]
        lease.release()

        lease2 = arena.lease()
        again = lease2.get(("col", "fp1"),
                           lambda: pytest.fail("hit must not rebuild"))
        assert [s.name for s in again.specs] \
            == [s.name for s in entry.specs]
        lease2.release()

        stats = arena.stats()
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
        assert stats.bytes > 0
    assert ambient_segments() == ambient


def test_build_returning_none_caches_nothing():
    with TableArena() as arena:
        lease = arena.lease()
        assert lease.get(("levels", "t0"), lambda: None) is None
        lease.release()
        stats = arena.stats()
        # Not a miss: nothing materialized, nothing to count against
        # the hit ratio — non-shareable inputs are simply invisible.
        assert (stats.entries, stats.misses, stats.bytes) == (0, 0, 0)


def test_none_array_slots_round_trip_as_none_specs():
    # Column entries carry (values, validity); tree-level entries carry
    # None for absent bridges — both sides must survive.
    with TableArena() as arena:
        lease = arena.lease()
        entry = lease.get(("levels", "t1"),
                          lambda: [np.arange(8), None, np.ones(4)])
        assert entry.specs[1] is None and entry.views[1] is None
        assert entry.specs[0] is not None and entry.specs[2] is not None
        lease.release()


def test_pinned_entries_are_never_evicted():
    ambient = ambient_segments()
    with TableArena(budget_bytes=1) as arena:  # always over budget
        lease = arena.lease()
        entry = lease.get(("col", "pinned"), lambda: arrays(2))
        # Over budget but pinned: the entry must survive more traffic.
        lease.get(("col", "other"), lambda: arrays(3))
        assert arena.stats().entries >= 1
        assert ("col", "pinned") in arena._entries
        lease.release()
        # Unpinned now; the 1-byte budget evicts everything.
        arena.reclaim(1 << 30)
        assert arena.stats().entries == 0
    assert ambient_segments() == ambient


def test_lru_eviction_under_own_budget():
    one_entry = sum(a.nbytes for a in arrays(0))
    with activate(ExecutionContext()) as ctx:
        with TableArena(budget_bytes=int(one_entry * 2.5)) as arena:
            for i in range(4):
                lease = arena.lease()
                lease.get(("col", f"fp{i}"), lambda i=i: arrays(i))
                lease.release()
            stats = arena.stats()
            assert stats.entries == 2
            assert stats.evictions == 2
            # Least-recently-used go first: fp0/fp1 out, fp2/fp3 in.
            assert set(arena._entries) \
                == {("col", "fp2"), ("col", "fp3")}
        assert ctx.health.arena_evictions == 2


# ----------------------------------------------------------------------
# governor integration: ledger tag, pressure eviction, reclaimer
# ----------------------------------------------------------------------
def test_bytes_mirror_into_the_ledger_under_the_arena_tag():
    governor = MemoryGovernor()
    with TableArena(governor=governor) as arena:
        lease = arena.lease()
        entry = lease.get(("col", "fp"), lambda: arrays(4))
        assert governor.stats().by_tag[ARENA_TAG] == entry.nbytes
        lease.release()
        arena.reclaim(entry.nbytes)
        assert ARENA_TAG not in governor.stats().by_tag
    assert governor.stats().by_tag.get(ARENA_TAG, 0) == 0


def test_governor_pressure_evicts_unpinned_entries():
    governor = MemoryGovernor(budget_bytes=48 * 1024)
    with TableArena(governor=governor) as arena:
        lease = arena.lease()
        lease.get(("col", "a"), lambda: arrays(5))
        lease.release()
        # A foreign charge pushes the ledger over budget; the next
        # arena acquisition evicts the unpinned entry to repay.
        governor.charge(60 * 1024, "cache")
        lease = arena.lease()
        lease.get(("col", "b"), lambda: arrays(6))
        lease.release()
        assert ("col", "a") not in arena._entries
        assert arena.stats().evictions >= 1
        governor.release(60 * 1024, "cache")


def test_hard_reservation_reclaims_arena_before_shedding():
    # Arena holds ~12KiB of a 64KiB budget; a 56KiB batch reservation
    # fits only if the governor claws the arena bytes back. Without the
    # reclaimer hook this would wait out its timeout and shed.
    clock = SimulatedClock()
    governor = MemoryGovernor(budget_bytes=64 * 1024, clock=clock)
    with TableArena(governor=governor) as arena:
        lease = arena.lease()
        lease.get(("col", "warm"), lambda: arrays(7))
        lease.release()
        assert governor.stats().by_tag[ARENA_TAG] > 0
        with governor.reserve(56 * 1024, tag="query", hard=True,
                              wait_timeout=0.01):
            pass
        assert governor.stats().denials == 0
        assert arena.stats().evictions == 1


def test_hard_reservation_never_evicts_pinned_entries():
    clock = SimulatedClock()
    governor = MemoryGovernor(budget_bytes=32 * 1024, clock=clock)
    with TableArena(governor=governor) as arena:
        lease = arena.lease()
        lease.get(("col", "in-use"), lambda: arrays(8))
        with pytest.raises(MemoryPressureError):
            governor.reserve(30 * 1024, tag="query", hard=True,
                             wait_timeout=0.01)
        assert ("col", "in-use") in arena._entries
        lease.release()


# ----------------------------------------------------------------------
# invalidation, tracing, lifecycle
# ----------------------------------------------------------------------
def test_invalidate_drops_entries_mentioning_the_token():
    with TableArena() as arena:
        lease = arena.lease()
        lease.get(("col", "fp-old"), lambda: arrays(9))
        lease.get(("order", "fp-old", ("g",)), lambda: arrays(10))
        lease.get(("col", "fp-new"), lambda: arrays(11))
        lease.release()
        assert arena.invalidate("fp-old") == 2
        assert set(arena._entries) == {("col", "fp-new")}


def test_cold_materialization_traces_shm_copy_and_warm_does_not():
    tracer = Tracer(clock=SimulatedClock())
    with activate(ExecutionContext(tracer=tracer)):
        with TableArena() as arena:
            lease = arena.lease()
            lease.get(("order", "fp", ()), lambda: arrays(12))
            lease.release()
            cold = tracer.finish().find_all("shm.copy")
            assert len(cold) == 1
            assert cold[0].attrs["kind"] == "order"
            assert cold[0].attrs["bytes"] > 0

            warm_tracer = Tracer(clock=SimulatedClock())
            with activate(ExecutionContext(tracer=warm_tracer)):
                lease = arena.lease()
                lease.get(("order", "fp", ()),
                          lambda: pytest.fail("warm must not rebuild"))
                lease.release()
            assert warm_tracer.finish().find_all("shm.copy") == []


def test_close_unlinks_everything_even_pinned():
    ambient = ambient_segments()
    arena = TableArena()
    lease = arena.lease()
    lease.get(("col", "fp"), lambda: arrays(13))
    assert len(ambient_segments() - ambient) == 2
    arena.close()
    assert ambient_segments() == ambient
    assert owned_segments() == []
    with pytest.raises(RuntimeError):
        arena.lease().get(("col", "fp2"), lambda: arrays(14))


def test_failed_materialization_rolls_back_its_segments():
    class Boom:
        nbytes = 8

        def __array__(self, *args, **kwargs):
            raise ValueError("boom")

    ambient = ambient_segments()
    with TableArena() as arena:
        lease = arena.lease()
        # First array materializes a segment, then the second blows up
        # mid-entry: the half-built entry must roll back completely.
        with pytest.raises(ValueError):
            lease.get(("col", "bad"), lambda: [np.arange(16), Boom()])
        assert arena.stats().entries == 0
        assert ambient_segments() == ambient
