"""Merge sort tree queries against brute-force oracles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mst import AVG, MAX, MIN, SUM, MergeSortTree
from repro.mst.stats import measured_vs_model


def _oracle_count(keys, slab_ranges, key_ranges):
    total = 0
    for lo, hi in slab_ranges:
        for i in range(max(lo, 0), min(hi, len(keys))):
            for klo, khi in key_ranges:
                if (klo is None or keys[i] >= klo) and \
                        (khi is None or keys[i] < khi):
                    total += 1
    return total


class TestCount:
    @pytest.mark.parametrize("fanout,k,cascading", [
        (2, 32, True), (2, 32, False), (3, 1, True), (32, 32, True),
        (4, 8, False),
    ])
    def test_count_below_random(self, fanout, k, cascading, rng):
        n = 150
        keys = rng.integers(-1, n, size=n)
        tree = MergeSortTree(keys, fanout=fanout, sample_every=k,
                             cascading=cascading)
        for _ in range(100):
            lo, hi = sorted(rng.integers(0, n + 1, size=2))
            threshold = int(rng.integers(-2, n + 2))
            assert tree.count_below(lo, hi, threshold) == \
                int(np.sum(keys[lo:hi] < threshold))

    def test_count_key_range(self, rng):
        n = 100
        keys = rng.integers(0, 30, size=n)
        tree = MergeSortTree(keys, fanout=2)
        for _ in range(50):
            lo, hi = sorted(rng.integers(0, n + 1, size=2))
            klo, khi = sorted(rng.integers(0, 31, size=2))
            got = tree.count([(lo, hi)], [(int(klo), int(khi))])
            assert got == _oracle_count(keys, [(lo, hi)],
                                        [(int(klo), int(khi))])

    def test_count_multiple_slab_ranges(self, rng):
        n = 80
        keys = rng.integers(0, 20, size=n)
        tree = MergeSortTree(keys, fanout=2)
        ranges = [(5, 20), (30, 31), (50, 78)]
        got = tree.count(ranges, [(None, 10)])
        assert got == _oracle_count(keys, ranges, [(None, 10)])

    def test_count_multiple_key_ranges(self, rng):
        n = 80
        keys = rng.integers(0, 20, size=n)
        tree = MergeSortTree(keys, fanout=2)
        key_ranges = [(0, 5), (10, 15)]
        got = tree.count([(10, 70)], key_ranges)
        assert got == _oracle_count(keys, [(10, 70)], key_ranges)

    def test_empty_tree(self):
        tree = MergeSortTree(np.array([], dtype=np.int64))
        assert tree.count([(0, 0)], [(None, 5)]) == 0
        assert tree.count_qualifying([(None, None)]) == 0

    def test_out_of_bounds_ranges_clamped(self, rng):
        keys = rng.integers(0, 10, size=20)
        tree = MergeSortTree(keys)
        assert tree.count([(-5, 100)], [(None, 100)]) == 20

    def test_cascaded_equals_plain(self, rng):
        """Fractional cascading is an optimisation, never a semantic
        change (Section 4.2)."""
        n = 130
        keys = rng.integers(0, 40, size=n)
        for fanout, k in [(2, 1), (2, 8), (4, 4), (8, 32)]:
            fast = MergeSortTree(keys, fanout=fanout, sample_every=k,
                                 cascading=True)
            slow = MergeSortTree(keys, fanout=fanout, sample_every=k,
                                 cascading=False)
            for _ in range(60):
                lo, hi = sorted(rng.integers(0, n + 1, size=2))
                t = int(rng.integers(-1, 41))
                assert fast.count_below(lo, hi, t) == \
                    slow.count_below(lo, hi, t)


class TestSelect:
    @pytest.mark.parametrize("fanout", [2, 3, 32])
    def test_select_kth_in_frame(self, fanout, rng):
        n = 120
        perm = rng.permutation(n)
        tree = MergeSortTree(perm, fanout=fanout, sample_every=8)
        for _ in range(100):
            a, b = sorted(rng.integers(0, n + 1, size=2))
            if a == b:
                continue
            k = int(rng.integers(0, b - a))
            slab, key = tree.select(k, [(int(a), int(b))])
            qualifying = [(i, v) for i, v in enumerate(perm)
                          if a <= v < b]
            assert (slab, key) == qualifying[k]

    def test_select_multiple_key_ranges(self, rng):
        n = 60
        perm = rng.permutation(n)
        tree = MergeSortTree(perm, fanout=2)
        ranges = [(0, 10), (20, 25), (40, 60)]
        qualifying = [(i, v) for i, v in enumerate(perm)
                      if any(lo <= v < hi for lo, hi in ranges)]
        for k in range(len(qualifying)):
            assert tree.select(k, ranges) == qualifying[k]

    def test_select_out_of_range_raises(self, rng):
        tree = MergeSortTree(rng.permutation(10))
        with pytest.raises(IndexError):
            tree.select(5, [(0, 5)])
        with pytest.raises(IndexError):
            tree.select(-1, [(0, 5)])

    def test_select_empty_tree_raises(self):
        tree = MergeSortTree(np.array([], dtype=np.int64))
        with pytest.raises(IndexError):
            tree.select(0, [(None, None)])


class TestAggregate:
    def test_sum_aggregate(self, rng):
        n = 90
        keys = rng.integers(-1, n, size=n)
        payload = rng.integers(0, 100, size=n).astype(np.float64)
        tree = MergeSortTree(keys, fanout=2, aggregate=SUM, payload=payload)
        for _ in range(80):
            lo, hi = sorted(rng.integers(0, n + 1, size=2))
            t = int(rng.integers(-1, n + 1))
            expected = [payload[i] for i in range(lo, hi) if keys[i] < t]
            got = tree.aggregate([(lo, hi)], t)
            if expected:
                assert got == pytest.approx(sum(expected))
            else:
                assert got is None

    @pytest.mark.parametrize("spec,reducer", [
        (MIN, min), (MAX, max),
    ])
    def test_min_max_aggregate(self, spec, reducer, rng):
        n = 60
        keys = rng.integers(0, n, size=n)
        payload = rng.integers(0, 50, size=n)
        tree = MergeSortTree(keys, fanout=3, aggregate=spec,
                             payload=payload, builder="scalar")
        for _ in range(50):
            lo, hi = sorted(rng.integers(0, n + 1, size=2))
            t = int(rng.integers(0, n + 1))
            expected = [payload[i] for i in range(lo, hi) if keys[i] < t]
            got = tree.aggregate([(lo, hi)], t)
            if expected:
                assert got == reducer(expected)
            else:
                assert got is None

    def test_avg_aggregate_generic_path(self, rng):
        """AVG has no numpy prefix kernel: exercises the generic
        object-state annotation path."""
        n = 40
        keys = rng.integers(0, n, size=n)
        payload = [float(v) for v in rng.integers(0, 9, size=n)]
        tree = MergeSortTree(keys, fanout=2, aggregate=AVG, payload=payload)
        for lo, hi, t in [(0, 40, 40), (5, 30, 12), (10, 10, 5)]:
            expected = [payload[i] for i in range(lo, hi) if keys[i] < t]
            got = tree.aggregate([(lo, hi)], t)
            if expected:
                assert got == pytest.approx(sum(expected) / len(expected))
            else:
                assert got is None

    def test_aggregate_without_annotation_raises(self, rng):
        tree = MergeSortTree(rng.integers(0, 5, size=10))
        with pytest.raises(ValueError):
            tree.aggregate([(0, 10)], 3)


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MergeSortTree([1, 2, 3], fanout=1)
        with pytest.raises(ValueError):
            MergeSortTree([1, 2, 3], sample_every=0)
        with pytest.raises(ValueError):
            MergeSortTree([1, 2, 3], builder="quantum")

    def test_memory_accounting_close_to_model(self, rng):
        keys = rng.integers(0, 5000, size=5000)
        tree = MergeSortTree(keys, fanout=32, sample_every=32)
        report = measured_vs_model(tree)
        assert 0.4 < report["ratio"] < 2.0

    def test_height_and_n(self, rng):
        tree = MergeSortTree(rng.integers(0, 10, size=100), fanout=2)
        assert tree.n == 100
        assert tree.height == 8  # runs 1..128


@given(
    keys=st.lists(st.integers(-3, 30), min_size=0, max_size=120),
    fanout=st.sampled_from([2, 3, 4, 16]),
    sample_every=st.sampled_from([1, 2, 8, 32]),
    queries=st.lists(
        st.tuples(st.integers(0, 120), st.integers(0, 120),
                  st.integers(-5, 35)),
        min_size=1, max_size=12),
)
@settings(max_examples=120, deadline=None)
def test_count_below_hypothesis(keys, fanout, sample_every, queries):
    arr = np.asarray(keys, dtype=np.int64)
    tree = MergeSortTree(arr, fanout=fanout, sample_every=sample_every)
    n = len(arr)
    for a, b, t in queries:
        lo, hi = sorted((min(a, n), min(b, n)))
        assert tree.count_below(lo, hi, t) == int(np.sum(arr[lo:hi] < t))


@given(
    n=st.integers(1, 100),
    fanout=st.sampled_from([2, 5, 32]),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=80, deadline=None)
def test_select_hypothesis(n, fanout, seed):
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    tree = MergeSortTree(perm, fanout=fanout, sample_every=4)
    a, b = sorted(rng.integers(0, n + 1, size=2))
    if a == b:
        return
    k = int(rng.integers(0, b - a))
    slab, key = tree.select(k, [(int(a), int(b))])
    qualifying = [(i, v) for i, v in enumerate(perm) if a <= v < b]
    assert (slab, key) == qualifying[k]


def test_inverted_key_range_rejected(rng):
    tree = MergeSortTree(rng.integers(0, 10, size=20))
    with pytest.raises(ValueError):
        tree.count([(0, 20)], [(9, 3)])
    with pytest.raises(ValueError):
        tree.select(0, [(9, 3)])
