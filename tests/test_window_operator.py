"""Window operator mechanics: partitioning, sharing, output columns."""

import datetime

import numpy as np
import pytest

from repro.errors import WindowFunctionError
from repro.table import DataType, Table
from repro.window import (
    FrameSpec,
    WindowCall,
    WindowOperator,
    WindowSpec,
    current_row,
    preceding,
    unbounded_preceding,
    window_query,
)
from repro.window.frame import OrderItem


def _table():
    return Table.from_dict({
        "g": (DataType.STRING, ["a", "b", "a", "b", "a"]),
        "o": (DataType.INT64, [3, 1, 1, 2, 2]),
        "v": (DataType.FLOAT64, [10.0, 20.0, 30.0, 40.0, 50.0]),
        "d": (DataType.DATE, [datetime.date(2020, 1, i + 1)
                              for i in range(5)]),
    })


class TestPartitioning:
    def test_partitions_are_independent(self):
        table = _table()
        spec = WindowSpec(partition_by=("g",), order_by=(OrderItem("o"),),
                          frame=FrameSpec.rows(unbounded_preceding(),
                                               current_row()))
        result = window_query(table, [WindowCall("sum", ("v",))], spec)
        # rows in original order; partition a: rows 2 (o=1), 4 (o=2),
        # 0 (o=3); partition b: rows 1 (o=1), 3 (o=2)
        assert result.columns[-1].to_list() == [90.0, 20.0, 30.0, 60.0,
                                                80.0]

    def test_string_partition_keys(self):
        table = _table()
        spec = WindowSpec(partition_by=("g",))
        result = window_query(table, [WindowCall("count_star")], spec)
        assert result.columns[-1].to_list() == [3, 2, 3, 2, 3]

    def test_no_partition_no_order(self):
        table = _table()
        result = window_query(table, [WindowCall("max", ("v",))],
                              WindowSpec())
        assert result.columns[-1].to_list() == [50.0] * 5

    def test_null_partition_key_is_one_partition(self):
        table = Table.from_dict({
            "g": (DataType.INT64, [1, None, None, 1]),
            "v": (DataType.INT64, [1, 2, 3, 4]),
        })
        result = window_query(table, [WindowCall("count_star")],
                              WindowSpec(partition_by=("g",)))
        assert result.columns[-1].to_list() == [2, 2, 2, 2]


class TestOperatorApi:
    def test_shared_spec_groups_calls(self):
        table = _table()
        spec = WindowSpec(order_by=(OrderItem("o"),))
        operator = WindowOperator(table)
        operator.add(WindowCall("sum", ("v",), output="s"), spec)
        operator.add(WindowCall("count_star", output="c"), spec)
        assert len(operator._groups) == 1
        result = operator.run()
        assert "s" in result.schema and "c" in result.schema

    def test_distinct_specs_not_merged(self):
        table = _table()
        operator = WindowOperator(table)
        operator.add(WindowCall("count_star"),
                     WindowSpec(partition_by=("g",)))
        operator.add(WindowCall("count_star"), WindowSpec())
        assert len(operator._groups) == 2
        result = operator.run()
        # duplicate output names uniquified
        names = result.schema.names()
        assert "count_star" in names and "count_star_1" in names

    def test_output_dtype_inference(self):
        table = _table()
        spec = WindowSpec(order_by=(OrderItem("o"),))
        result = window_query(table, [
            WindowCall("count_star", output="n"),
            WindowCall("avg", ("v",), output="a"),
            WindowCall("first_value", ("g",), output="s"),
        ], spec)
        assert result.schema.field("n").dtype is DataType.INT64
        assert result.schema.field("a").dtype is DataType.FLOAT64
        assert result.schema.field("s").dtype is DataType.STRING

    def test_date_results_restored(self):
        table = _table()
        spec = WindowSpec(order_by=(OrderItem("o"),),
                          frame=FrameSpec.rows(preceding(1), current_row()))
        result = window_query(
            table, [WindowCall("first_value", ("d",), output="fd"),
                    WindowCall("lag", ("d",), output="ld"),
                    WindowCall("max", ("d",), output="md")], spec)
        assert result.schema.field("fd").dtype is DataType.DATE
        assert isinstance(result.column("fd")[0], datetime.date)
        assert result.schema.field("md").dtype is DataType.DATE

    def test_empty_table(self):
        table = Table.from_dict({"v": (DataType.INT64, [])})
        result = window_query(table, [WindowCall("sum", ("v",))],
                              WindowSpec())
        assert result.num_rows == 0

    def test_single_row(self):
        table = Table.from_dict({"v": (DataType.INT64, [7])})
        result = window_query(
            table, [WindowCall("median", ("v",)),
                    WindowCall("rank"),
                    WindowCall("count", ("v",), distinct=True)],
            WindowSpec())
        assert result.row(0) == (7, 7.0, 1, 1)

    def test_unknown_column_in_call(self):
        table = _table()
        with pytest.raises(WindowFunctionError):
            window_query(table, [WindowCall("sum", ("missing",))],
                         WindowSpec())

    def test_results_scattered_to_original_order(self):
        """Output rows must align with input rows regardless of sort."""
        table = _table()
        spec = WindowSpec(order_by=(OrderItem("o"),))
        result = window_query(table, [WindowCall("row_number")], spec)
        o = table.column("o").to_list()
        rn = result.columns[-1].to_list()
        # row_number over the default running frame == position in the
        # o-sorted order (ties broken stably)
        expected_order = sorted(range(5), key=lambda i: (o[i], i))
        expected = [0] * 5
        for position, row in enumerate(expected_order):
            expected[row] = position + 1
        assert rn == expected


class TestMultiKeyWindowOrder:
    def test_two_order_columns(self):
        table = Table.from_dict({
            "a": (DataType.INT64, [1, 1, 0, 0]),
            "b": (DataType.INT64, [0, 1, 0, 1]),
            "v": (DataType.INT64, [10, 20, 30, 40]),
        })
        spec = WindowSpec(order_by=(OrderItem("a"),
                                    OrderItem("b", descending=True)),
                          frame=FrameSpec.rows(unbounded_preceding(),
                                               current_row()))
        result = window_query(table, [WindowCall("sum", ("v",))], spec)
        # order: (0,1)=40, (0,0)=30, (1,1)=20, (1,0)=10
        assert result.columns[-1].to_list() == [100.0, 90.0, 70.0, 40.0]

    def test_descending_range_frame(self):
        table = Table.from_dict({
            "o": (DataType.INT64, [5, 3, 1]),
            "v": (DataType.INT64, [1, 2, 3]),
        })
        spec = WindowSpec(
            order_by=(OrderItem("o", descending=True),),
            frame=FrameSpec.range(preceding(2), current_row()))
        result = window_query(table, [WindowCall("count_star")], spec)
        # descending order 5,3,1; RANGE 2 preceding means values in
        # [o, o+2]
        assert result.columns[-1].to_list() == [1, 2, 2]


class TestManyPartitions:
    """Partition-boundary handling under a larger, many-partition load."""

    def test_fifty_partitions_agree_with_oracle(self):
        rng = np.random.default_rng(99)
        n = 4_000
        table = Table.from_dict({
            "g": (DataType.INT64, [int(v) for v in rng.integers(0, 50, n)]),
            "o": (DataType.INT64, [int(v) for v in rng.integers(0, 200, n)]),
            "x": (DataType.INT64, [int(v) for v in rng.integers(0, 25, n)]),
            "y": (DataType.FLOAT64,
                  [float(v) for v in rng.normal(size=n)]),
        })
        spec = WindowSpec(partition_by=("g",), order_by=(OrderItem("o"),),
                          frame=FrameSpec.rows(preceding(15), current_row()))
        calls = [
            WindowCall("median", ("y",), output="m"),
            WindowCall("count", ("x",), distinct=True, output="d"),
            WindowCall("rank", order_by=(OrderItem("y"),), output="r"),
        ]
        result = window_query(table, calls, spec)
        # sample-check 60 rows against the naive oracle
        oracle = window_query(
            table,
            [WindowCall("median", ("y",), output="m", algorithm="naive"),
             WindowCall("count", ("x",), distinct=True, output="d",
                        algorithm="naive"),
             WindowCall("rank", order_by=(OrderItem("y"),), output="r",
                        algorithm="naive")],
            spec)
        for row in range(0, n, 67):
            assert result.column("d")[row] == oracle.column("d")[row]
            assert result.column("r")[row] == oracle.column("r")[row]
            assert result.column("m")[row] == \
                pytest.approx(oracle.column("m")[row])

    def test_singleton_partitions(self):
        """Every row its own partition: all structures built at n=1."""
        n = 40
        table = Table.from_dict({
            "g": (DataType.INT64, list(range(n))),
            "y": (DataType.FLOAT64, [float(i) for i in range(n)]),
        })
        spec = WindowSpec(partition_by=("g",))
        result = window_query(
            table,
            [WindowCall("median", ("y",), output="m"),
             WindowCall("count", ("y",), distinct=True, output="d"),
             WindowCall("rank", order_by=(OrderItem("y"),), output="r"),
             WindowCall("mode", ("y",), output="mo")],
            spec)
        assert result.column("m").to_list() == [float(i) for i in range(n)]
        assert result.column("d").to_list() == [1] * n
        assert result.column("r").to_list() == [1] * n
        assert result.column("mo").to_list() == \
            [float(i) for i in range(n)]
