"""Preprocessing passes: Algorithm 1, permutations, rank keys, remaps."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.preprocess import (
    NO_PREVIOUS,
    IndexRemap,
    dense_rank_keys,
    inverse_permutation,
    next_occurrence,
    occurrence_lists,
    permutation_array,
    previous_occurrence,
    row_number_keys,
)
from repro.sortutil import SortColumn


def _prev_oracle(values):
    out = []
    for i, v in enumerate(values):
        prev = NO_PREVIOUS
        for j in range(i - 1, -1, -1):
            if values[j] == v:
                prev = j
                break
        out.append(prev)
    return out


class TestPreviousOccurrence:
    def test_paper_figure_1(self):
        # Figure 1: values a a b b a c b c -> - - ... per the paper's
        # array: [-, -, 1, 2, 1?, ...]; we use the figure's semantics.
        values = np.array([0, 1, 1, 0, 2, 0, 1, 2])  # a b b a c a b c
        got = previous_occurrence(values)
        assert got.tolist() == _prev_oracle(values.tolist())

    def test_sorted_path_matches_oracle(self, rng):
        values = rng.integers(0, 8, size=60)
        assert previous_occurrence(values).tolist() == \
            _prev_oracle(values.tolist())

    def test_dict_path_for_strings(self):
        values = ["a", "b", "a", "c", "b", "a"]
        assert previous_occurrence(values).tolist() == \
            _prev_oracle(values)

    def test_paths_agree(self, rng):
        values = rng.integers(0, 5, size=40)
        sorted_path = previous_occurrence(values)
        dict_path = previous_occurrence(list(values))
        assert np.array_equal(sorted_path, dict_path)

    def test_nulls_are_one_group(self):
        values = [1, None, 2, None, 1]
        validity = np.array([True, False, True, False, True])
        got = previous_occurrence(values, validity=validity)
        assert got.tolist() == [-1, -1, -1, 1, 0]

    def test_empty(self):
        assert len(previous_occurrence(np.array([], dtype=np.int64))) == 0

    def test_all_unique(self):
        got = previous_occurrence(np.arange(10))
        assert (got == NO_PREVIOUS).all()

    def test_all_duplicates(self):
        got = previous_occurrence(np.zeros(5, dtype=np.int64))
        assert got.tolist() == [-1, 0, 1, 2, 3]

    @given(st.lists(st.integers(0, 6), max_size=80))
    @settings(max_examples=100, deadline=None)
    def test_hypothesis(self, values):
        got = previous_occurrence(np.asarray(values, dtype=np.int64))
        assert got.tolist() == _prev_oracle(values)


class TestNextOccurrence:
    def test_mirror_of_previous(self, rng):
        values = rng.integers(0, 6, size=50)
        nxt = next_occurrence(values)
        n = len(values)
        for i in range(n):
            expected = n
            for j in range(i + 1, n):
                if values[j] == values[i]:
                    expected = j
                    break
            assert nxt[i] == expected

    def test_strings(self):
        values = ["x", "y", "x"]
        assert next_occurrence(values).tolist() == [2, 3, 3]

    def test_nulls(self):
        values = [1, None, None, 1]
        validity = np.array([True, False, False, True])
        got = next_occurrence(values, validity=validity)
        assert got.tolist() == [3, 2, 4, 4]


class TestPermutation:
    def test_permutation_and_inverse(self, rng):
        values = rng.integers(0, 100, size=40)
        perm = permutation_array([SortColumn(values)], 40)
        # perm lists frame positions in ascending value order
        sorted_values = values[perm]
        assert np.all(sorted_values[:-1] <= sorted_values[1:])
        inv = inverse_permutation(perm)
        assert np.array_equal(perm[inv], np.arange(40))
        assert np.array_equal(inv[perm], np.arange(40))

    def test_stability(self):
        values = np.array([5, 1, 5, 1])
        perm = permutation_array([SortColumn(values)], 4)
        assert perm.tolist() == [1, 3, 0, 2]

    def test_empty_order_is_identity(self):
        perm = permutation_array([], 5)
        assert perm.tolist() == [0, 1, 2, 3, 4]


class TestRankKeys:
    def test_dense_keys_share_ties(self):
        values = np.array([30, 10, 20, 10, 30])
        keys = dense_rank_keys([SortColumn(values)], 5)
        assert keys.tolist() == [2, 0, 1, 0, 2]

    def test_row_number_keys_unique(self):
        values = np.array([30, 10, 20, 10, 30])
        keys = row_number_keys([SortColumn(values)], 5)
        assert sorted(keys.tolist()) == [0, 1, 2, 3, 4]
        # ties broken by position: first 10 before second 10
        assert keys[1] < keys[3]
        assert keys[0] < keys[4]

    def test_descending(self):
        values = np.array([1, 3, 2])
        keys = dense_rank_keys(
            [SortColumn(values, descending=True)], 3)
        assert keys.tolist() == [2, 0, 1]

    def test_multi_key(self):
        a = np.array([1, 1, 2])
        b = np.array([9, 3, 0])
        keys = dense_rank_keys([SortColumn(a), SortColumn(b)], 3)
        assert keys.tolist() == [1, 0, 2]


class TestIndexRemap:
    def test_bounds_translation(self):
        keep = np.array([True, False, True, True, False, True])
        remap = IndexRemap(keep)
        assert remap.n_filtered == 4
        assert remap.to_filtered_bound(0) == 0
        assert remap.to_filtered_bound(2) == 1
        assert remap.to_filtered_bound(6) == 4
        assert remap.bounds_to_filtered(1, 5) == (1, 3)

    def test_roundtrip(self):
        keep = np.array([False, True, True, False, True])
        remap = IndexRemap(keep)
        for filtered in range(remap.n_filtered):
            full = remap.to_full(filtered)
            assert keep[full]
            assert remap.to_filtered_bound(full) == filtered

    def test_arrays(self):
        keep = np.array([True, False, True])
        remap = IndexRemap(keep)
        got = remap.bounds_array_to_filtered(np.array([-1, 0, 1, 2, 3, 9]))
        assert got.tolist() == [0, 0, 1, 1, 2, 2]
        assert remap.to_full_array(np.array([0, 1])).tolist() == [0, 2]

    def test_is_kept(self):
        remap = IndexRemap(np.array([True, False]))
        assert remap.is_kept(0) and not remap.is_kept(1)


class TestOccurrenceLists:
    def test_positions_and_ranges(self):
        values = [5, 7, 5, 7, 5]
        occ = occurrence_lists(values)
        assert occ.positions(5) == [0, 2, 4]
        assert occ.occurs_in(5, 1, 3)
        assert not occ.occurs_in(5, 3, 4)
        assert not occ.occurs_in(99, 0, 5)
        assert not occ.occurs_in(5, 3, 3)

    def test_null_positions(self):
        values = [1, None, 1]
        validity = np.array([True, False, True])
        occ = occurrence_lists(values, validity=validity)
        assert occ.positions(None, is_null=True) == [1]
        assert occ.positions(1) == [0, 2]
        assert occ.occurs_in(None, 0, 3, is_null=True)


class TestPreviousOccurrenceByHash:
    """The Section 6.7 hash-sorting formulation of Algorithm 1."""

    def test_matches_dict_path_on_strings(self, rng):
        from repro.preprocess import previous_occurrence_by_hash
        values = [f"v{v}" for v in rng.integers(0, 6, size=80)]
        assert previous_occurrence_by_hash(values).tolist() == \
            previous_occurrence(values).tolist()

    def test_matches_sorted_path_on_ints(self, rng):
        from repro.preprocess import previous_occurrence_by_hash
        values = rng.integers(0, 8, size=70)
        assert previous_occurrence_by_hash(list(values)).tolist() == \
            previous_occurrence(values).tolist()

    def test_hash_collisions_resolved_exactly(self):
        from repro.preprocess import previous_occurrence_by_hash

        class Collider:
            """All instances hash alike; equality by payload."""

            def __init__(self, payload):
                self.payload = payload

            def __hash__(self):
                return 42

            def __eq__(self, other):
                return isinstance(other, Collider) \
                    and self.payload == other.payload

        values = [Collider(p) for p in ["a", "b", "a", "c", "b", "a"]]
        got = previous_occurrence_by_hash(values)
        assert got.tolist() == [-1, -1, 0, -1, 1, 2]

    def test_nulls_form_one_group(self):
        import numpy as np
        from repro.preprocess import previous_occurrence_by_hash
        values = [1, None, 2, None, 1]
        validity = np.array([True, False, True, False, True])
        got = previous_occurrence_by_hash(values, validity=validity)
        assert got.tolist() == [-1, -1, -1, 1, 0]

    def test_empty(self):
        from repro.preprocess import previous_occurrence_by_hash
        assert len(previous_occurrence_by_hash([])) == 0

    def test_string_distinct_count_through_engine(self, rng):
        """String framed COUNT DISTINCT exercises the hash path."""
        from repro.table import DataType, Table
        from repro.window import (FrameSpec, WindowCall, WindowSpec,
                                  current_row, preceding, window_query)
        from repro.window.frame import OrderItem
        n = 90
        table = Table.from_dict({
            "o": (DataType.INT64, [int(v) for v in rng.integers(0, 30, n)]),
            "s": (DataType.STRING,
                  [f"u{v}" for v in rng.integers(0, 7, n)]),
        })
        spec = WindowSpec(order_by=(OrderItem("o"),),
                          frame=FrameSpec.rows(preceding(9), current_row()))
        got = window_query(
            table, [WindowCall("count", ("s",), distinct=True)],
            spec).columns[-1].to_list()
        want = window_query(
            table, [WindowCall("count", ("s",), distinct=True,
                               algorithm="naive")],
            spec).columns[-1].to_list()
        assert got == want
