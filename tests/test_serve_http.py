"""End-to-end HTTP tests for ``repro.serve`` over real sockets."""

import datetime
import json
import threading
from http.client import HTTPConnection

import pytest

from repro.serve import (
    QueryService,
    ServerThread,
    TenantPolicy,
    TenantRegistry,
)
from repro.sql import Catalog, Session, SessionConfig
from repro.table import DataType, Table

SQL = ("SELECT g, sum(v) OVER (PARTITION BY g ORDER BY v "
       "ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) AS s FROM t")


def _catalog():
    table = Table.from_dict({
        "g": (DataType.INT64, [1, 1, 2, 2, 2]),
        "v": (DataType.INT64, [5, 3, 8, 1, 4]),
        "d": (DataType.DATE, [datetime.date(2024, 1, i + 1)
                              for i in range(5)]),
    })
    return Catalog({"t": table})


@pytest.fixture(scope="module")
def server():
    session = Session(_catalog(), config=SessionConfig())
    tenants = TenantRegistry(
        policies={"blocked": TenantPolicy(rate=0.0),
                  "batchy": TenantPolicy(priority="batch")},
        clock=session.clock)
    service = QueryService(session, tenants=tenants, own_session=True)
    with ServerThread(service) as handle:
        yield handle
    service.close()


def _request(server, method, path, payload=None, headers=None,
             raw_body=None):
    """One request on a fresh connection → (status, headers, body)."""
    conn = HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        body = raw_body
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        conn.request(method, path, body=body,
                     headers={"Content-Type": "application/json",
                              **(headers or {})})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), \
            response.read()
    finally:
        conn.close()


def _json(server, method, path, payload=None, headers=None):
    status, _, body = _request(server, method, path, payload, headers)
    return status, json.loads(body)


class TestExecute:
    def test_execute_returns_full_result(self, server):
        status, out = _json(server, "POST", "/v1/execute",
                            {"sql": SQL})
        assert status == 200
        assert out["columns"] == ["g", "s"]
        assert out["types"] == ["int64", "int64"]
        assert out["row_count"] == 5
        assert out["rows"][0] == [1, 8]
        assert out["tenant"] == "anonymous"
        assert out["priority"] == "interactive"
        assert out["stats"]["outcome"] == "ok"
        assert out["stats"]["elapsed_seconds"] >= 0

    def test_date_columns_serialize_to_iso(self, server):
        status, out = _json(server, "POST", "/v1/execute",
                            {"sql": "SELECT d FROM t"})
        assert status == 200
        assert out["rows"][0] == ["2024-01-01"]

    def test_trace_flag_returns_span_tree(self, server):
        status, out = _json(server, "POST", "/v1/execute",
                            {"sql": SQL, "trace": True})
        assert status == 200
        assert out["trace"]["name"] == "query"

    def test_priority_header_is_capped_by_policy(self, server):
        _, out = _json(server, "POST", "/v1/execute", {"sql": SQL},
                       headers={"x-repro-tenant": "batchy",
                                "x-repro-priority": "interactive"})
        assert out["priority"] == "batch"

    def test_body_priority_downgrades(self, server):
        _, out = _json(server, "POST", "/v1/execute",
                       {"sql": SQL, "priority": "batch"})
        assert out["priority"] == "batch"


class TestParams:
    def test_positional_params_bind(self, server):
        status, out = _json(server, "POST", "/v1/execute",
                            {"sql": "SELECT g FROM t WHERE v > $1",
                             "params": [3]})
        assert status == 200
        assert out["rows"] == [[1], [2], [2]]

    def test_named_params_bind(self, server):
        status, out = _json(server, "POST", "/v1/execute",
                            {"sql": "SELECT g FROM t WHERE v > :lo "
                                    "AND v < :hi",
                             "params": {"lo": 2, "hi": 6}})
        assert status == 200
        assert out["rows"] == [[1], [1], [2]]

    def test_param_type_mismatch_422(self, server):
        status, out = _json(server, "POST", "/v1/execute",
                            {"sql": "SELECT g FROM t WHERE v > $1",
                             "params": ["three"]})
        assert status == 422
        assert out["error"]["code"] == "PARAM_BINDING"
        assert "$1" in out["error"]["message"]

    def test_param_arity_mismatch_422(self, server):
        status, out = _json(server, "POST", "/v1/execute",
                            {"sql": "SELECT g FROM t WHERE v > $1",
                             "params": [1, 2, 3]})
        assert status == 422
        assert out["error"]["code"] == "PARAM_BINDING"

    def test_scalar_params_field_400(self, server):
        status, out = _json(server, "POST", "/v1/execute",
                            {"sql": "SELECT g FROM t WHERE v > $1",
                             "params": 3})
        assert status == 400
        assert out["error"]["code"] == "INVALID_CONFIG"

    def test_unbound_placeholder_without_params_422(self, server):
        status, out = _json(server, "POST", "/v1/execute",
                            {"sql": "SELECT g FROM t WHERE v > $1"})
        assert status == 422
        assert out["error"]["code"] == "PARAM_BINDING"


class TestTables:
    def test_tables_lists_catalog_schemas(self, server):
        status, out = _json(server, "GET", "/v1/tables")
        assert status == 200
        assert out["tenant"]
        (schema,) = out["tables"]
        assert schema["name"] == "t"
        assert schema["row_count"] == 5
        assert {"name": "g", "dtype": "int64"} in schema["columns"]

    def test_tables_rejects_post(self, server):
        status, headers, _ = _request(server, "POST", "/v1/tables",
                                      payload={})
        assert status == 405
        assert headers["Allow"] == "GET"


class TestErrors:
    def test_unknown_path_404(self, server):
        status, out = _json(server, "GET", "/nope")
        assert status == 404
        assert out["error"]["code"] == "NOT_FOUND"

    def test_wrong_method_405_with_allow(self, server):
        status, headers, body = _request(server, "GET", "/v1/execute")
        assert status == 405
        assert headers["Allow"] == "POST"
        assert json.loads(body)["error"]["code"] == "METHOD_NOT_ALLOWED"

    def test_malformed_json_400(self, server):
        status, _, body = _request(server, "POST", "/v1/execute",
                                   raw_body=b"not json")
        assert status == 400
        assert json.loads(body)["error"]["code"] == "INVALID_CONFIG"

    def test_missing_sql_400(self, server):
        status, out = _json(server, "POST", "/v1/execute", {})
        assert status == 400
        assert out["error"]["code"] == "INVALID_CONFIG"

    def test_sql_syntax_error_400(self, server):
        status, out = _json(server, "POST", "/v1/execute",
                            {"sql": "SELEC nope"})
        assert status == 400
        assert out["error"]["code"] == "SQL_SYNTAX"
        assert out["error"]["type"] == "SqlSyntaxError"

    def test_unknown_table_400(self, server):
        status, out = _json(server, "POST", "/v1/execute",
                            {"sql": "SELECT x FROM missing"})
        assert status == 400
        assert out["error"]["code"] == "SQL_ANALYSIS"

    def test_bad_timeout_400(self, server):
        status, out = _json(server, "POST", "/v1/execute",
                            {"sql": SQL, "timeout_ms": -5})
        assert status == 400
        assert out["error"]["code"] == "INVALID_CONFIG"

    def test_rate_limited_tenant_429_with_retry_after(self, server):
        status, headers, body = _request(
            server, "POST", "/v1/execute", {"sql": SQL},
            headers={"x-repro-tenant": "blocked"})
        assert status == 429
        assert float(headers["Retry-After"]) >= 1.0
        out = json.loads(body)
        assert out["error"]["code"] == "TENANT_RATE_LIMITED"

    def test_query_timeout_408(self, server):
        status, out = _json(
            server, "POST", "/v1/execute",
            {"sql": SQL, "timeout_ms": 0.0001})
        # Sub-microsecond deadline: either the clock ticks past it
        # (408) or the tiny query beats it (200); both are valid.
        assert status in (200, 408)
        if status == 408:
            assert out["error"]["code"] == "QUERY_TIMEOUT"


class TestExplain:
    def test_explain_plan(self, server):
        status, out = _json(server, "POST", "/v1/explain",
                            {"sql": SQL})
        assert status == 200
        assert out["analyze"] is False
        assert "Window" in out["plan"]
        assert "PlanCache" in out["plan"]

    def test_explain_analyze(self, server):
        status, out = _json(server, "POST", "/v1/explain",
                            {"sql": SQL, "analyze": True})
        assert status == 200
        assert out["analyze"] is True
        assert "actual" in out["plan"]


class TestOps:
    def test_metrics_exposition(self, server):
        _json(server, "POST", "/v1/execute", {"sql": SQL})
        status, headers, body = _request(server, "GET", "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode("utf-8")
        assert "repro_http_requests_total" in text
        assert "repro_plan_cache_hits_total" in text
        assert "repro_tenant_admitted_total" in text
        # Worker-pool gauges export even while the executor is the
        # default thread pool (live=0, nothing spawned).
        assert "repro_worker_live" in text
        assert "repro_worker_shm_bytes" in text

    def test_healthz(self, server):
        status, out = _json(server, "GET", "/v1/healthz")
        assert status == 200
        assert out["status"] == "ok"
        assert out["gateway"]["max_concurrent"] >= 1
        assert out["open_breakers"] == []
        assert out["plan_cache"]["budget_bytes"] > 0
        tenants = {t["tenant"] for t in out["tenants"]}
        assert "anonymous" in tenants
        # Worker-pool state rides along (satellite: operators see the
        # executor, crash counters and shm footprint from /v1/healthz).
        workers = out["workers"]
        assert workers["executor"] in ("process", "thread", "serial")
        assert workers["process_broken"] is False
        assert workers["shm_bytes"] == 0

    def test_keep_alive_reuses_connection(self, server):
        conn = HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            for _ in range(3):
                conn.request("POST", "/v1/execute",
                             body=json.dumps({"sql": SQL}),
                             headers={"Content-Type":
                                      "application/json"})
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()

    def test_connection_close_honored(self, server):
        status, headers, _ = _request(
            server, "GET", "/v1/healthz",
            headers={"Connection": "close"})
        assert status == 200
        assert headers["Connection"] == "close"


class TestMetricsRace:
    def test_concurrent_scrapes_race_queries(self, server):
        """/v1/metrics stays consistent while queries run (satellite:
        scrape-time collectors read live gateway/tenant/cache state
        under their own locks — no torn exposition)."""
        errors = []
        stop = threading.Event()

        def run_queries():
            try:
                while not stop.is_set():
                    status, _ = _json(server, "POST", "/v1/execute",
                                      {"sql": SQL})
                    assert status == 200
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def scrape():
            try:
                for _ in range(10):
                    status, _, body = _request(server, "GET",
                                               "/v1/metrics")
                    assert status == 200
                    text = body.decode("utf-8")
                    # Well-formed exposition: every non-comment line is
                    # "name[{labels}] value" and families stay sorted.
                    for line in text.splitlines():
                        if line and not line.startswith("#"):
                            name, value = line.rsplit(" ", 1)
                            assert name
                            float(value)
                    assert text.endswith("\n")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        workers = [threading.Thread(target=run_queries)
                   for _ in range(2)]
        scrapers = [threading.Thread(target=scrape) for _ in range(3)]
        for t in workers + scrapers:
            t.start()
        for t in scrapers:
            t.join()
        stop.set()
        for t in workers:
            t.join()
        assert errors == []
