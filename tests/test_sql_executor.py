"""End-to-end SQL execution."""

import datetime

import pytest

from repro.errors import SqlAnalysisError
from repro.sql import Catalog, execute
from repro.table import DataType, Table


@pytest.fixture
def catalog():
    people = Table.from_dict({
        "id": (DataType.INT64, [1, 2, 3, 4, 5]),
        "name": (DataType.STRING, ["ann", "bob", "cat", "dan", "eve"]),
        "dept": (DataType.STRING, ["eng", "eng", "ops", "ops", "eng"]),
        "salary": (DataType.INT64, [120, 90, 80, None, 150]),
        "hired": (DataType.DATE, [datetime.date(2020, 1, i * 3 + 1)
                                  for i in range(5)]),
    })
    sales = Table.from_dict({
        "person_id": (DataType.INT64, [1, 1, 2, 3, 3, 3]),
        "amount": (DataType.FLOAT64, [10.0, 20.0, 5.0, 7.0, 8.0, 9.0]),
    })
    return Catalog({"people": people, "sales": sales})


class TestProjection:
    def test_select_columns(self, catalog):
        out = execute("select name, salary from people", catalog)
        assert out.schema.names() == ["name", "salary"]
        assert out.num_rows == 5

    def test_expressions_and_aliases(self, catalog):
        out = execute("select salary * 2 as double_pay from people "
                      "where id = 1", catalog)
        assert out.column("double_pay").to_list() == [240]

    def test_star(self, catalog):
        out = execute("select * from people", catalog)
        assert out.num_columns == 5

    def test_select_without_from(self, catalog):
        out = execute("select 1 + 1 as two, 'x' as s", catalog)
        assert out.row(0) == (2, "x")

    def test_case_expression(self, catalog):
        out = execute("""
            select name, case when salary >= 120 then 'high'
                              when salary >= 90 then 'mid'
                              else 'low' end as band
            from people order by id
        """, catalog)
        assert out.column("band").to_list() == \
            ["high", "mid", "low", "low", "high"]

    def test_scalar_functions(self, catalog):
        out = execute("select abs(-3) a, mod(7, 3) m, round(2.46, 1) r, "
                      "coalesce(null, 5) c, upper('ab') u, year(hired) y "
                      "from people limit 1", catalog)
        assert out.row(0) == (3, 1, 2.5, 5, "AB", 2020)


class TestFilterOrderLimit:
    def test_where(self, catalog):
        out = execute("select name from people where dept = 'eng' "
                      "and salary > 100", catalog)
        assert sorted(out.column("name").to_list()) == ["ann", "eve"]

    def test_null_comparison_filters_out(self, catalog):
        out = execute("select name from people where salary > 0", catalog)
        assert "dan" not in out.column("name").to_list()

    def test_is_null(self, catalog):
        out = execute("select name from people where salary is null",
                      catalog)
        assert out.column("name").to_list() == ["dan"]

    def test_order_by_and_limit(self, catalog):
        out = execute("select name from people order by salary desc "
                      "nulls last limit 2", catalog)
        assert out.column("name").to_list() == ["eve", "ann"]

    def test_order_by_position(self, catalog):
        out = execute("select name, salary from people order by 2 "
                      "nulls first limit 1", catalog)
        assert out.row(0) == ("dan", None)

    def test_order_by_alias(self, catalog):
        out = execute("select salary * -1 as neg from people "
                      "where salary is not null order by neg limit 1",
                      catalog)
        assert out.row(0) == (-150,)

    def test_distinct(self, catalog):
        out = execute("select distinct dept from people order by dept",
                      catalog)
        assert out.column("dept").to_list() == ["eng", "ops"]

    def test_between_and_in(self, catalog):
        out = execute("select name from people where salary between 80 "
                      "and 120 and dept in ('eng', 'ops') order by id",
                      catalog)
        assert out.column("name").to_list() == ["ann", "bob", "cat"]


class TestAggregation:
    def test_group_by(self, catalog):
        out = execute("""
            select dept, count(*) n, count(salary) with_salary,
                   sum(salary) total, avg(salary) mean,
                   min(salary) lo, max(salary) hi
            from people group by dept order by dept
        """, catalog)
        assert out.to_rows() == [
            ("eng", 3, 3, 360, 120.0, 90, 150),
            ("ops", 2, 1, 80, 80.0, 80, 80),
        ]

    def test_global_aggregate(self, catalog):
        out = execute("select count(*), sum(salary) from people", catalog)
        assert out.row(0) == (5, 440)

    def test_global_aggregate_on_empty_input(self, catalog):
        out = execute("select count(*) c, sum(salary) s from people "
                      "where id > 99", catalog)
        assert out.row(0) == (0, None)

    def test_count_distinct(self, catalog):
        out = execute("select count(distinct dept) from people", catalog)
        assert out.row(0) == (2,)

    def test_having(self, catalog):
        out = execute("select dept from people group by dept "
                      "having count(*) > 2", catalog)
        assert out.column("dept").to_list() == ["eng"]

    def test_percentile_within_group(self, catalog):
        out = execute("""
            select percentile_disc(0.5) within group (order by amount) med,
                   percentile_cont(0.5) within group (order by amount) cont
            from sales
        """, catalog)
        assert out.row(0) == (8.0, 8.5)

    def test_aggregate_filter_clause(self, catalog):
        out = execute("select count(*) filter (where dept = 'eng') e "
                      "from people", catalog)
        assert out.row(0) == (3,)

    def test_expression_over_aggregate(self, catalog):
        out = execute("select sum(salary) / count(salary) as mean "
                      "from people", catalog)
        assert out.row(0) == (110.0,)


class TestJoins:
    def test_inner_join(self, catalog):
        out = execute("""
            select name, amount from people p join sales s
              on p.id = s.person_id
            order by amount
        """, catalog)
        assert out.num_rows == 6
        assert out.row(0) == ("bob", 5.0)

    def test_left_join_nulls(self, catalog):
        out = execute("""
            select name, amount from people p left join sales s
              on p.id = s.person_id
            where amount is null order by name
        """, catalog)
        assert out.column("name").to_list() == ["dan", "eve"]

    def test_cross_join(self, catalog):
        out = execute("select count(*) from people, sales", catalog)
        assert out.row(0) == (30,)

    def test_join_group_by(self, catalog):
        out = execute("""
            select name, sum(amount) total from people p
            join sales s on p.id = s.person_id
            group by name order by total desc
        """, catalog)
        assert out.row(0) == ("ann", 30.0)

    def test_ambiguous_column_rejected(self, catalog):
        with pytest.raises(SqlAnalysisError):
            execute("select id from people p join people q on 1 = 1",
                    catalog)


class TestSubqueries:
    def test_uncorrelated_scalar(self, catalog):
        out = execute("select name, (select max(salary) from people) top "
                      "from people order by id limit 1", catalog)
        assert out.row(0) == ("ann", 150)

    def test_correlated_scalar(self, catalog):
        out = execute("""
            select name,
                   (select sum(amount) from sales s
                    where s.person_id = p.id) total
            from people p order by id
        """, catalog)
        assert out.column("total").to_list() == [30.0, 5.0, 24.0, None,
                                                 None]

    def test_exists(self, catalog):
        out = execute("""
            select name from people p
            where exists (select 1 from sales s where s.person_id = p.id)
            order by id
        """, catalog)
        assert out.column("name").to_list() == ["ann", "bob", "cat"]

    def test_scalar_subquery_cardinality_checked(self, catalog):
        with pytest.raises(SqlAnalysisError):
            execute("select (select id from people)", catalog)

    def test_derived_table(self, catalog):
        out = execute("""
            select dept, n from (
              select dept, count(*) as n from people group by dept) sub
            where n > 2
        """, catalog)
        assert out.row(0) == ("eng", 3)

    def test_cte(self, catalog):
        out = execute("""
            with rich as (select * from people where salary > 100)
            select count(*) from rich
        """, catalog)
        assert out.row(0) == (2,)


class TestErrors:
    def test_unknown_table(self, catalog):
        with pytest.raises(SqlAnalysisError):
            execute("select * from nope", catalog)

    def test_unknown_column(self, catalog):
        with pytest.raises(SqlAnalysisError):
            execute("select nope from people", catalog)

    def test_unknown_function(self, catalog):
        with pytest.raises(SqlAnalysisError):
            execute("select frobnicate(id) from people", catalog)

    def test_aggregate_in_where_rejected(self, catalog):
        with pytest.raises(SqlAnalysisError):
            execute("select id from people where count(*) > 1", catalog)

    def test_order_by_position_out_of_range(self, catalog):
        with pytest.raises(SqlAnalysisError):
            execute("select id from people order by 7", catalog)
