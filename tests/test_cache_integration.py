"""End-to-end cache behaviour: the ISSUE acceptance criteria.

Running the same windowed query twice through one executor session must
build each index structure exactly once (visible in the hit counters),
and a deliberately tiny byte budget must evict + spill + reload while
producing results identical to the uncached path.
"""

import threading

import numpy as np

from conftest import make_window_table
from repro import Catalog, Session, execute
from repro.cache.store import StructureCache
from repro.window.calls import WindowCall
from repro.window.frame import (
    FrameSpec,
    OrderItem,
    WindowSpec,
    current_row,
    preceding,
)
from repro.window.operator import window_query

SQL = """
    select g, o,
           percentile_disc(0.5, order by x) over w as med,
           count(distinct x) over w as uniq,
           rank(order by y desc) over w as rnk,
           first_value(y order by y) over w as lowest,
           sum(y) over w as total
    from t
    window w as (partition by g order by o
                 rows between 20 preceding and current row)
"""


def _assert_tables_equal(a, b):
    assert a.schema.names() == b.schema.names()
    for name in a.schema.names():
        va, vb = a.column(name).to_list(), b.column(name).to_list()
        for i, (u, v) in enumerate(zip(va, vb)):
            if isinstance(u, float) and isinstance(v, float):
                assert abs(u - v) < 1e-9, (name, i, u, v)
            else:
                assert u == v, (name, i, u, v)


# ----------------------------------------------------------------------
# query twice, build once
# ----------------------------------------------------------------------
def test_session_builds_each_structure_exactly_once():
    catalog = Catalog({"t": make_window_table(200)})
    uncached = execute(SQL, catalog)
    with Session(catalog) as session:
        cold = session.execute(SQL)
        stats = session.cache_stats()
        assert stats.misses > 0
        assert stats.hits == 0
        cold_misses = stats.misses

        warm = session.execute(SQL)
        stats = session.cache_stats()
        # Zero new misses: every structure was built exactly once.
        assert stats.misses == cold_misses
        assert stats.hits == cold_misses

        _assert_tables_equal(cold, uncached)
        _assert_tables_equal(warm, uncached)


def test_session_third_run_still_all_hits():
    catalog = Catalog({"t": make_window_table(150)})
    with Session(catalog) as session:
        for _ in range(3):
            result = session.execute(SQL)
        stats = session.cache_stats()
        assert stats.hits == 2 * stats.misses
        assert result.num_rows == 150


def test_session_different_frames_share_structures():
    # The cache key excludes the frame clause: changing only the ROWS
    # bounds must not rebuild anything.
    catalog = Catalog({"t": make_window_table(150)})
    narrow = SQL
    wide = SQL.replace("20 preceding", "80 preceding")
    with Session(catalog) as session:
        session.execute(narrow)
        misses = session.cache_stats().misses
        session.execute(wide)
        stats = session.cache_stats()
        assert stats.misses == misses
        assert stats.hits == misses


def test_session_data_change_invalidates():
    table = make_window_table(100)
    catalog = Catalog({"t": table})
    with Session(catalog) as session:
        session.execute(SQL)
        misses = session.cache_stats().misses
        table.column("x").append(7)  # append to an involved column
        table.column("g").append(0)
        table.column("o").append(1)
        table.column("y").append(0.5)
        table.column("flag").append(True)
        session.execute(SQL)
        # New fingerprint, new keys: everything rebuilt, nothing hit.
        stats = session.cache_stats()
        assert stats.misses == 2 * misses
        assert stats.hits == 0


def test_window_query_cold_warm_direct_api():
    table = make_window_table(180)
    spec = WindowSpec(partition_by=("g",), order_by=(OrderItem("o"),),
                      frame=FrameSpec.rows(preceding(15), current_row()))
    calls = [WindowCall("percentile_disc", ("x",), fraction=0.9),
             WindowCall("count", ("x",), distinct=True),
             WindowCall("lead", ("y",))]
    baseline = window_query(table, calls, spec)
    with StructureCache() as cache:
        cold = window_query(table, calls, spec, cache=cache)
        misses = cache.stats().misses
        assert misses > 0 and cache.stats().hits == 0
        warm = window_query(table, calls, spec, cache=cache)
        stats = cache.stats()
        assert stats.misses == misses and stats.hits == misses
    _assert_tables_equal(cold, baseline)
    _assert_tables_equal(warm, baseline)


# ----------------------------------------------------------------------
# tiny budget: evict + spill + reload, identical results
# ----------------------------------------------------------------------
def test_tiny_budget_spills_and_reloads_identically():
    catalog = Catalog({"t": make_window_table(200)})
    uncached = execute(SQL, catalog)
    with Session(catalog, budget_bytes=2048) as session:
        first = session.execute(SQL)
        second = session.execute(SQL)
        stats = session.cache_stats()
        assert stats.evictions > 0
        assert stats.spills > 0
        assert stats.reloads > 0
        _assert_tables_equal(first, uncached)
        _assert_tables_equal(second, uncached)


def test_tiny_budget_without_spill_still_correct():
    catalog = Catalog({"t": make_window_table(120)})
    uncached = execute(SQL, catalog)
    with Session(catalog, budget_bytes=0, spill=False) as session:
        result = session.execute(SQL)
        stats = session.cache_stats()
        assert stats.evictions > 0 and stats.spills == 0
        assert stats.bytes_in_use == 0
        _assert_tables_equal(result, uncached)


# ----------------------------------------------------------------------
# EXPLAIN integration
# ----------------------------------------------------------------------
def test_explain_exposes_cache_stats():
    catalog = Catalog({"t": make_window_table(80)})
    with Session(catalog) as session:
        session.execute(SQL)
        plan = session.explain(SQL)
        assert "StructureCache" in plan
        stats = session.cache_stats()
        assert f"hits={stats.hits} misses={stats.misses}" in plan
        assert "budget=unlimited" in plan


# ----------------------------------------------------------------------
# threaded sharing
# ----------------------------------------------------------------------
def test_threaded_probes_share_one_cached_tree(rng):
    """Several repro.parallel.threads workers probe one cached tree
    read-only while other threads run the same acquire concurrently."""
    from repro.mst.tree import MergeSortTree
    from repro.mst.vectorized import batched_count
    from repro.parallel.threads import threaded_batched_count

    n = 4_000
    keys = rng.integers(0, n, size=n)
    lo = rng.integers(0, n // 2, size=n)
    hi = np.minimum(lo + rng.integers(1, n // 2, size=n), n)
    thr = rng.integers(0, n, size=n)

    builds = []

    def builder():
        builds.append(1)
        return MergeSortTree(keys, fanout=4)

    serial = batched_count(MergeSortTree(keys, fanout=4).levels, lo, hi,
                           thr)
    outputs = []
    with StructureCache() as cache:
        def session_thread():
            tree = cache.acquire(("shared",), builder)
            try:
                outputs.append(threaded_batched_count(
                    tree.levels, lo, hi, thr, workers=4, task_size=512))
            finally:
                cache.release(("shared",))

        threads = [threading.Thread(target=session_thread)
                   for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(builds) == 1  # built once, shared by all threads
        stats = cache.stats()
        assert stats.misses == 1 and stats.hits == 3
    assert len(outputs) == 4
    for out in outputs:
        assert np.array_equal(out, serial)


def test_concurrent_sessions_one_cache_consistent_results():
    table = make_window_table(150)
    catalog = Catalog({"t": table})
    baseline = execute(SQL, catalog)
    results = []
    errors = []
    with Session(catalog) as session:
        def run():
            try:
                results.append(session.execute(SQL))
            except Exception as exc:  # pragma: no cover - defensive
                errors.append(exc)

        threads = [threading.Thread(target=run) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        stats = session.cache_stats()
        # Builds under the cache lock: each structure built exactly once
        # no matter how the three executions interleave.
        assert stats.hits + stats.misses == 3 * stats.misses
    for result in results:
        _assert_tables_equal(result, baseline)
