"""Property: SQL window syntax and the operator API always agree.

Random frame clauses are rendered to SQL text and executed through the
parser/executor; the same specification is built programmatically and
run through the window operator. Both paths must produce identical
columns — pinning down the SQL translation layer (parser, frame
translation, hidden-column plumbing) against the core engine.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import assert_columns_equal
from repro.sql import Catalog, execute
from repro.table import DataType, Table
from repro.window import (
    FrameExclusion,
    FrameSpec,
    WindowCall,
    WindowSpec,
    current_row,
    following,
    preceding,
    unbounded_following,
    unbounded_preceding,
    window_query,
)
from repro.window.frame import FrameMode, OrderItem

_EXCLUSION_SQL = {
    FrameExclusion.NO_OTHERS: "",
    FrameExclusion.CURRENT_ROW: " exclude current row",
    FrameExclusion.GROUP: " exclude group",
    FrameExclusion.TIES: " exclude ties",
}

_FUNCTIONS = [
    ("count(distinct x)",
     dict(function="count", args=("x",), distinct=True)),
    ("sum(x)", dict(function="sum", args=("x",))),
    ("median(y)", dict(function="median", args=("y",))),
    ("percentile_disc(0.8, order by y)",
     dict(function="percentile_disc", args=("y",), fraction=0.8,
          order_by=(OrderItem("y"),))),
    ("rank(order by y desc)",
     dict(function="rank", order_by=(OrderItem("y", descending=True),))),
    ("row_number()", dict(function="row_number")),
    ("first_value(x)", dict(function="first_value", args=("x",))),
    ("lead(y, 2)", dict(function="lead", args=("y",), offset=2)),
    ("mode(x)", dict(function="mode", args=("x",))),
    ("dense_rank(order by x)",
     dict(function="dense_rank", order_by=(OrderItem("x"),))),
]


@st.composite
def bound_pair(draw):
    kinds = st.sampled_from(["unbounded", "preceding", "following",
                             "current"])
    start_kind = draw(kinds)
    end_kind = draw(kinds)
    p = draw(st.integers(0, 8))
    f = draw(st.integers(0, 8))
    if start_kind == "unbounded":
        start_sql, start = "unbounded preceding", unbounded_preceding()
    elif start_kind == "current":
        start_sql, start = "current row", current_row()
    elif start_kind == "preceding":
        start_sql, start = f"{p} preceding", preceding(p)
    else:
        start_sql, start = f"{p} following", following(p)
    if end_kind == "unbounded":
        end_sql, end = "unbounded following", unbounded_following()
    elif end_kind == "current":
        end_sql, end = "current row", current_row()
    elif end_kind == "preceding":
        end_sql, end = f"{f} preceding", preceding(f)
    else:
        end_sql, end = f"{f} following", following(f)
    return start_sql, start, end_sql, end


@given(
    seed=st.integers(0, 10_000),
    n=st.integers(1, 30),
    mode=st.sampled_from(["rows", "groups"]),
    bounds=bound_pair(),
    exclusion=st.sampled_from(list(FrameExclusion)),
    fn_index=st.integers(0, len(_FUNCTIONS) - 1),
)
@settings(max_examples=150, deadline=None)
def test_sql_matches_operator(seed, n, mode, bounds, exclusion, fn_index):
    rng = np.random.default_rng(seed)
    table = Table.from_dict({
        "o": (DataType.INT64, [int(v) for v in rng.integers(0, 10, n)]),
        "x": (DataType.INT64, [int(v) for v in rng.integers(0, 5, n)]),
        "y": (DataType.FLOAT64,
              [float(v) for v in rng.integers(0, 9, n)]),
    })
    start_sql, start, end_sql, end = bounds
    fn_sql, fn_kwargs = _FUNCTIONS[fn_index]
    sql = (f"select {fn_sql} over (order by o {mode} between {start_sql} "
           f"and {end_sql}{_EXCLUSION_SQL[exclusion]}) as out_col from t")
    frame_mode = FrameMode.ROWS if mode == "rows" else FrameMode.GROUPS
    try:
        frame = FrameSpec(frame_mode, start, end, exclusion)
    except Exception:
        # invalid bound combination: SQL must reject it too
        with pytest.raises(Exception):
            execute(sql, Catalog({"t": table}))
        return
    spec = WindowSpec(order_by=(OrderItem("o"),), frame=frame)
    via_sql = execute(sql, Catalog({"t": table})).column("out_col").to_list()
    via_api = window_query(table, [WindowCall(**fn_kwargs)],
                           spec).columns[-1].to_list()
    assert_columns_equal(via_sql, via_api)
