"""Frame bound resolution against a brute-force oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrameError
from repro.window.bounds import (
    PeerGroups,
    exclusion_ranges,
    frame_sizes,
    resolve_bounds,
    row_ranges,
)
from repro.window.frame import (
    FrameExclusion,
    FrameSpec,
    current_row,
    following,
    preceding,
    unbounded_following,
    unbounded_preceding,
)


class TestRowsMode:
    def test_sliding(self):
        frame = FrameSpec.rows(preceding(2), current_row())
        start, end = resolve_bounds(frame, 5)
        assert start.tolist() == [0, 0, 0, 1, 2]
        assert end.tolist() == [1, 2, 3, 4, 5]

    def test_unbounded(self):
        frame = FrameSpec.rows(unbounded_preceding(), unbounded_following())
        start, end = resolve_bounds(frame, 4)
        assert start.tolist() == [0, 0, 0, 0]
        assert end.tolist() == [4, 4, 4, 4]

    def test_forward_only(self):
        frame = FrameSpec.rows(following(1), following(2))
        start, end = resolve_bounds(frame, 5)
        assert start.tolist() == [1, 2, 3, 4, 5]
        assert end.tolist() == [3, 4, 5, 5, 5]

    def test_empty_when_crossed(self):
        frame = FrameSpec.rows(following(3), preceding(3))
        start, end = resolve_bounds(frame, 4)
        assert (start == end).all()

    def test_per_row_offsets(self):
        offsets = np.array([0, 1, 2, 3])
        frame = FrameSpec.rows(preceding(offsets), current_row())
        start, end = resolve_bounds(frame, 4)
        assert start.tolist() == [0, 0, 0, 0]
        assert end.tolist() == [1, 2, 3, 4]

    def test_empty_partition(self):
        frame = FrameSpec.rows(preceding(1), current_row())
        start, end = resolve_bounds(frame, 0)
        assert len(start) == 0 and len(end) == 0


class TestRangeMode:
    def test_value_window(self):
        keys = np.array([1.0, 2.0, 4.0, 7.0, 8.0])
        frame = FrameSpec.range(preceding(2), current_row())
        start, end = resolve_bounds(frame, 5, range_keys=keys)
        # frames: values in [v-2, v]
        assert start.tolist() == [0, 0, 1, 3, 3]
        assert end.tolist() == [1, 2, 3, 4, 5]

    def test_peers_share_current_row_bounds(self):
        keys = np.array([1.0, 2.0, 2.0, 3.0])
        frame = FrameSpec.range(unbounded_preceding(), current_row())
        start, end = resolve_bounds(frame, 4, range_keys=keys)
        assert end.tolist() == [1, 3, 3, 4]

    def test_following(self):
        keys = np.array([0.0, 1.0, 5.0])
        frame = FrameSpec.range(current_row(), following(1))
        start, end = resolve_bounds(frame, 3, range_keys=keys)
        assert start.tolist() == [0, 1, 2]
        assert end.tolist() == [2, 2, 3]

    def test_nulls_at_infinity_are_their_own_peers(self):
        keys = np.array([1.0, 2.0, np.inf, np.inf])  # nulls last
        frame = FrameSpec.range(preceding(1), current_row())
        start, end = resolve_bounds(frame, 4, range_keys=keys)
        assert start.tolist()[2:] == [2, 2]
        assert end.tolist()[2:] == [4, 4]

    def test_missing_keys_rejected(self):
        frame = FrameSpec.range(preceding(1), current_row())
        with pytest.raises(FrameError):
            resolve_bounds(frame, 3)

    def test_unbounded_range_needs_no_keys(self):
        frame = FrameSpec.range(unbounded_preceding(),
                                unbounded_following())
        start, end = resolve_bounds(frame, 3)
        assert end.tolist() == [3, 3, 3]


class TestGroupsMode:
    def test_groups_window(self):
        peers = PeerGroups(np.array([0, 0, 1, 1, 2]))
        frame = FrameSpec.groups(preceding(1), current_row())
        start, end = resolve_bounds(frame, 5, peers=peers)
        assert start.tolist() == [0, 0, 0, 0, 2]
        assert end.tolist() == [2, 2, 4, 4, 5]

    def test_groups_out_of_range(self):
        peers = PeerGroups(np.array([0, 1]))
        frame = FrameSpec.groups(following(5), following(9))
        start, end = resolve_bounds(frame, 2, peers=peers)
        assert (start == end).all()

    def test_groups_requires_peers(self):
        frame = FrameSpec.groups(preceding(1), current_row())
        with pytest.raises(FrameError):
            resolve_bounds(frame, 3)


class TestPeerGroups:
    def test_geometry(self):
        peers = PeerGroups(np.array([0, 0, 1, 2, 2, 2]))
        assert peers.num_groups == 3
        assert peers.peer_start().tolist() == [0, 0, 2, 3, 3, 3]
        assert peers.peer_end().tolist() == [2, 2, 3, 6, 6, 6]

    def test_single_group(self):
        peers = PeerGroups.single_group(4)
        assert peers.peer_start().tolist() == [0, 0, 0, 0]
        assert peers.peer_end().tolist() == [4, 4, 4, 4]

    def test_empty(self):
        peers = PeerGroups(np.array([], dtype=np.int64))
        assert peers.num_groups == 0


class TestExclusion:
    def _setup(self):
        start = np.zeros(6, dtype=np.int64)
        end = np.full(6, 6, dtype=np.int64)
        peers = PeerGroups(np.array([0, 0, 1, 1, 1, 2]))
        return start, end, peers

    def _rows(self, pieces, row):
        return row_ranges(pieces, row)

    def test_no_others(self):
        start, end, peers = self._setup()
        pieces = exclusion_ranges(start, end, FrameExclusion.NO_OTHERS,
                                  peers)
        assert self._rows(pieces, 3) == [(0, 6)]

    def test_current_row(self):
        start, end, peers = self._setup()
        pieces = exclusion_ranges(start, end, FrameExclusion.CURRENT_ROW,
                                  peers)
        assert self._rows(pieces, 3) == [(0, 3), (4, 6)]
        assert self._rows(pieces, 0) == [(1, 6)]

    def test_group(self):
        start, end, peers = self._setup()
        pieces = exclusion_ranges(start, end, FrameExclusion.GROUP, peers)
        assert self._rows(pieces, 3) == [(0, 2), (5, 6)]

    def test_ties(self):
        start, end, peers = self._setup()
        pieces = exclusion_ranges(start, end, FrameExclusion.TIES, peers)
        assert self._rows(pieces, 3) == [(0, 2), (3, 4), (5, 6)]

    def test_exclusion_clipped_to_frame(self):
        start = np.full(4, 2, dtype=np.int64)
        end = np.full(4, 3, dtype=np.int64)
        peers = PeerGroups(np.arange(4))
        pieces = exclusion_ranges(start, end, FrameExclusion.CURRENT_ROW,
                                  peers)
        # row 0's frame [2,3) does not contain row 0
        assert self._rows(pieces, 0) == [(2, 3)]
        assert self._rows(pieces, 2) == []

    def test_group_requires_peers(self):
        start, end, _ = self._setup()
        with pytest.raises(FrameError):
            exclusion_ranges(start, end, FrameExclusion.GROUP, None)

    def test_frame_sizes(self):
        start, end, peers = self._setup()
        pieces = exclusion_ranges(start, end, FrameExclusion.GROUP, peers)
        sizes = frame_sizes(pieces)
        assert sizes.tolist() == [4, 4, 3, 3, 3, 5]


@given(
    n=st.integers(1, 40),
    width_before=st.integers(0, 10),
    width_after=st.integers(0, 10),
    seed=st.integers(0, 9999),
)
@settings(max_examples=100, deadline=None)
def test_range_bounds_oracle(n, width_before, width_after, seed):
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.integers(0, 30, size=n)).astype(np.float64)
    frame = FrameSpec.range(preceding(width_before), following(width_after))
    start, end = resolve_bounds(frame, n, range_keys=keys)
    for i in range(n):
        expected = [j for j in range(n)
                    if keys[i] - width_before <= keys[j]
                    <= keys[i] + width_after]
        assert list(range(start[i], end[i])) == expected
