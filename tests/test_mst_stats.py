"""Memory model (Section 5.1 formula, Section 6.6 numbers)."""

import pytest

from repro.mst import MemoryModel, MergeSortTree, tree_memory_elements
from repro.mst.stats import _levels_above_input, measured_vs_model


def test_levels_above_input():
    assert _levels_above_input(1, 2) == 0
    assert _levels_above_input(2, 2) == 1
    assert _levels_above_input(1_000_000, 32) == 4
    assert _levels_above_input(100_000_000, 16) == 7
    assert _levels_above_input(100_000_000, 32) == 6


def test_paper_section_6_6_numbers():
    """f=16,k=4 -> 12.4 GB; f=k=32 -> 4.4 GB at 100M, 32-bit."""
    assert MemoryModel(100_000_000, 16, 4).gigabytes == pytest.approx(
        12.4, abs=0.01)
    assert MemoryModel(100_000_000, 32, 32).gigabytes == pytest.approx(
        4.4, abs=0.01)


def test_overhead_factor_matches_paper():
    """Section 6.6: 4.4 GB over a 1.6 GB operator baseline -> 2.75x."""
    model = MemoryModel(100_000_000, 32, 32)
    assert model.bytes / 1.6e9 == pytest.approx(2.75, abs=0.01)


def test_larger_fanout_reduces_elements():
    small_f = tree_memory_elements(1_000_000, 2, 32)
    large_f = tree_memory_elements(1_000_000, 32, 32)
    assert large_f < small_f


def test_larger_sampling_reduces_elements():
    dense = tree_memory_elements(1_000_000, 16, 1)
    sparse = tree_memory_elements(1_000_000, 16, 64)
    assert sparse < dense


def test_zero_and_one_elements():
    assert tree_memory_elements(0, 2, 32) == 0
    assert tree_memory_elements(1, 2, 32) == 0


def test_measured_vs_model_bands(rng):
    for fanout, k in [(2, 8), (16, 4), (32, 32)]:
        keys = rng.integers(0, 3000, size=3000)
        tree = MergeSortTree(keys, fanout=fanout, sample_every=k)
        report = measured_vs_model(tree)
        assert 0.3 < report["ratio"] < 2.5, (fanout, k, report)


def test_str_rendering():
    text = str(MemoryModel(1000, 32, 32))
    assert "f=32" in text and "GB" in text
