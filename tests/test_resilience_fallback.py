"""Graceful degradation: fault-injected builds vs the healthy path.

The acceptance property: with every index-structure build forced to
fail, queries must still complete — transparently downgraded to the
baseline evaluators — with results identical to the healthy run, the
downgrades visible in the health counters, and the session fully usable
afterwards.
"""

import time

import pytest

from conftest import assert_columns_equal, make_window_table
from repro import Catalog, Session
from repro.resilience import (
    ExecutionContext,
    FaultInjector,
    ResourceLimits,
    activate,
)
from repro.window.calls import WindowCall
from repro.window.frame import (
    FrameSpec,
    OrderItem,
    WindowSpec,
    current_row,
    preceding,
)
from repro.window.operator import window_query

TABLE = make_window_table(n=140, seed=7)
SPEC = WindowSpec(partition_by=("g",), order_by=(OrderItem("o"),),
                  frame=FrameSpec.rows(preceding(6), current_row()))

#: One call per function family (every family the engine evaluates).
CALLS = {
    "sum_distinct": dict(function="sum", args=["x"], distinct=True),
    "count_distinct": dict(function="count", args=["x"], distinct=True),
    "sum": dict(function="sum", args=["y"]),
    "min": dict(function="min", args=["x"]),
    "percentile_disc": dict(function="percentile_disc", args=["x"],
                            fraction=0.25),
    "median": dict(function="median", args=["y"]),
    "rank": dict(function="rank", order_by=(OrderItem("x"),)),
    "dense_rank": dict(function="dense_rank", order_by=(OrderItem("x"),)),
    "mode": dict(function="mode", args=["x"]),
    "first_value": dict(function="first_value", args=["y"],
                        order_by=(OrderItem("x"),)),
    "lead": dict(function="lead", args=["y"], offset=2,
                 order_by=(OrderItem("x"),)),
}


def _run(kwargs, faults=None):
    call = WindowCall(kwargs["function"],
                      kwargs.get("args", []),
                      **{k: v for k, v in kwargs.items()
                         if k not in ("function", "args")})
    ctx = ExecutionContext(faults=faults)
    with activate(ctx):
        result = window_query(TABLE, [call], SPEC)
    return result.columns[-1].to_list(), ctx.health


@pytest.mark.parametrize("name", sorted(CALLS))
def test_forced_fallback_matches_healthy_path(name):
    healthy, healthy_health = _run(CALLS[name])
    faults = FaultInjector().plan("structure.build", times=-1)
    degraded, degraded_health = _run(CALLS[name], faults=faults)
    assert_columns_equal(degraded, healthy)
    assert healthy_health.fallbacks == 0
    if faults.fired("structure.build"):
        # Families that build structures must record their downgrade.
        assert degraded_health.fallbacks > 0
        assert any("-> naive" in entry
                   for entry in degraded_health.downgrades)


def test_structure_byte_limit_degrades_instead_of_failing():
    healthy, _ = _run(CALLS["count_distinct"])
    call = WindowCall("count", ["x"], distinct=True)
    ctx = ExecutionContext(limits=ResourceLimits(max_structure_bytes=1))
    with activate(ctx):
        result = window_query(TABLE, [call], SPEC)
    assert_columns_equal(result.columns[-1].to_list(), healthy)
    assert ctx.health.fallbacks > 0
    assert ctx.health.limit_hits > 0


def test_session_survives_fault_storm_and_recovers():
    catalog = Catalog({"t": TABLE})
    sql = """
        select g, count(distinct x) over w as uniq,
               percentile_disc(0.5, order by x) over w as med,
               rank(order by y desc) over w as rnk
        from t
        window w as (partition by g order by o
                     rows between 20 preceding and current row)
    """
    with Session(catalog) as healthy_session:
        expected = healthy_session.execute(sql)

    # The storm trips the structure.build circuit breaker; a tiny reset
    # timeout lets the healed session recover within the test instead
    # of failing fast for the default 30s window.
    faults = FaultInjector().plan("structure.build", times=-1)
    with Session(catalog, faults=faults, breaker_reset=0.001) as session:
        degraded = session.execute(sql)
        for name in expected.schema.names():
            assert_columns_equal(degraded.column(name).to_list(),
                                 expected.column(name).to_list())
        assert session.health_stats().fallbacks > 0

        # Heal the faults: the same session must return to the indexed
        # path (structures build and the cache records misses/hits).
        faults.clear()
        time.sleep(0.01)  # let the breaker's reset timeout elapse
        recovered = session.execute(sql)
        for name in expected.schema.names():
            assert_columns_equal(recovered.column(name).to_list(),
                                 expected.column(name).to_list())
        before = session.cache_stats().misses
        assert before > 0
        again = session.execute(sql)
        for name in expected.schema.names():
            assert_columns_equal(again.column(name).to_list(),
                                 expected.column(name).to_list())
        assert session.cache_stats().hits > 0


def test_intermittent_build_fault_single_downgrade():
    # Only the first build fails; later calls use real structures, and
    # exactly the affected call degrades.
    faults = FaultInjector().plan("structure.build", times=1)
    healthy, _ = _run(CALLS["count_distinct"])
    degraded, health = _run(CALLS["count_distinct"], faults=faults)
    assert_columns_equal(degraded, healthy)
    assert health.fallbacks == faults.fired("structure.build") == 1
