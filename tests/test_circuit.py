"""Circuit breaker state machine and its wiring into builds and spill.

Tentpole coverage for the resilience ISSUE: per-resource breakers trip
after repeated failures, fail fast while open, admit exactly one
half-open probe per reset timeout, and recover on probe success — all
on the pluggable clock so every transition is deterministic. The
integration half checks the degradation contract: an open
``structure.build`` breaker routes evaluation to the naive fallback, an
open ``spill.write`` breaker degrades evictions to drops, an open
``spill.read`` breaker rebuilds from source.
"""

import numpy as np
import pytest

from conftest import assert_columns_equal, make_window_table
from repro import Catalog, Session
from repro.cache.spill import SpillManager
from repro.cache.store import StructureCache
from repro.errors import CircuitOpenError, StructureBuildError
from repro.mst.aggregates import SUM
from repro.mst.tree import MergeSortTree
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerRegistry,
    CircuitBreaker,
    ExecutionContext,
    FaultInjector,
    SimulatedClock,
    activate,
    guarded_builder,
)


def _breaker(threshold=3, reset=10.0, clock=None):
    clock = clock if clock is not None else SimulatedClock()
    return CircuitBreaker("r", failure_threshold=threshold,
                          reset_timeout=reset, clock=clock), clock


# ----------------------------------------------------------------------
# state machine
# ----------------------------------------------------------------------
def test_breaker_starts_closed_and_allows():
    breaker, _ = _breaker()
    assert breaker.state == CLOSED
    breaker.allow()  # no raise


def test_breaker_trips_after_consecutive_failures():
    breaker, _ = _breaker(threshold=3)
    assert breaker.record_failure() is False
    assert breaker.record_failure() is False
    assert breaker.record_failure() is True  # this one trips
    assert breaker.state == OPEN
    with pytest.raises(CircuitOpenError) as info:
        breaker.allow()
    assert info.value.resource == "r"
    assert info.value.retry_after > 0


def test_success_resets_the_consecutive_count():
    breaker, _ = _breaker(threshold=2)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == CLOSED  # never reached 2 in a row


def test_open_breaker_goes_half_open_after_timeout():
    breaker, clock = _breaker(threshold=1, reset=10.0)
    breaker.record_failure()
    assert breaker.state == OPEN
    clock.advance(9.9)
    assert breaker.state == OPEN
    clock.advance(0.2)
    assert breaker.state == HALF_OPEN


def test_half_open_probe_success_closes():
    breaker, clock = _breaker(threshold=1, reset=10.0)
    breaker.record_failure()
    clock.advance(10.1)
    breaker.allow()  # the probe
    breaker.record_success()
    assert breaker.state == CLOSED
    snap = breaker.snapshot()
    assert snap.probes == 1
    assert snap.recoveries == 1


def test_half_open_probe_failure_reopens():
    breaker, clock = _breaker(threshold=3, reset=10.0)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(10.1)
    breaker.allow()
    assert breaker.record_failure() is True  # half-open: one strike
    assert breaker.state == OPEN
    with pytest.raises(CircuitOpenError):
        breaker.allow()
    assert breaker.snapshot().trips == 2


def test_half_open_admits_one_probe_at_a_time():
    breaker, clock = _breaker(threshold=1, reset=10.0)
    breaker.record_failure()
    clock.advance(10.1)
    breaker.allow()  # probe in flight
    with pytest.raises(CircuitOpenError):
        breaker.allow()  # second caller keeps failing fast


def test_lost_probe_unblocks_after_another_timeout():
    breaker, clock = _breaker(threshold=1, reset=10.0)
    breaker.record_failure()
    clock.advance(10.1)
    breaker.allow()  # probe admitted, outcome never reported
    clock.advance(10.1)
    breaker.allow()  # a fresh probe may go
    breaker.record_success()
    assert breaker.state == CLOSED


def test_reset_forces_closed():
    breaker, _ = _breaker(threshold=1)
    breaker.record_failure()
    breaker.reset()
    assert breaker.state == CLOSED
    breaker.allow()


def test_snapshot_counts_short_circuits():
    breaker, _ = _breaker(threshold=1)
    breaker.record_failure()
    for _ in range(3):
        with pytest.raises(CircuitOpenError):
            breaker.allow()
    snap = breaker.snapshot()
    assert snap.short_circuits == 3
    assert snap.failures == 1
    assert "open" in snap.render()


def test_probe_fires_the_circuit_probe_fault_site():
    breaker, clock = _breaker(threshold=1, reset=1.0)
    breaker.record_failure()
    clock.advance(1.1)
    faults = FaultInjector().plan("circuit.probe", times=1)
    with activate(ExecutionContext(faults=faults)):
        with pytest.raises(RuntimeError):
            breaker.allow()
    assert faults.fired("circuit.probe") == 1


def test_breaker_ctor_validation():
    with pytest.raises(ValueError):
        CircuitBreaker("r", failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker("r", reset_timeout=0.0)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_lazily_creates_and_caches():
    registry = BreakerRegistry(failure_threshold=2, reset_timeout=5.0,
                               clock=SimulatedClock())
    a = registry.get("structure.build")
    assert registry.get("structure.build") is a
    assert a.failure_threshold == 2
    assert registry.get("spill.write") is not a


def test_registry_render_skips_untouched_breakers():
    registry = BreakerRegistry()
    registry.get("quiet")
    busy = registry.get("busy")
    busy.record_failure()
    lines = registry.render()
    assert len(lines) == 1
    assert lines[0].startswith("busy:")


def test_registry_reset_all():
    registry = BreakerRegistry(failure_threshold=1)
    registry.get("a").record_failure()
    registry.get("b").record_failure()
    registry.reset_all()
    assert registry.get("a").state == CLOSED
    assert registry.get("b").state == CLOSED


# ----------------------------------------------------------------------
# guarded_builder integration
# ----------------------------------------------------------------------
def _failing_builder():
    raise RuntimeError("boom")


def test_build_breaker_trips_and_short_circuits():
    clock = SimulatedClock()
    registry = BreakerRegistry(failure_threshold=2, reset_timeout=30.0,
                               clock=clock)
    ctx = ExecutionContext(breakers=registry, clock=clock)
    with activate(ctx):
        build = guarded_builder("mst", _failing_builder)
        for _ in range(2):
            with pytest.raises(StructureBuildError):
                build()
        # Tripped: the next build never runs the builder.
        with pytest.raises(CircuitOpenError):
            build()
    assert ctx.health.breaker_trips == 1
    assert ctx.health.breaker_short_circuits == 1
    assert registry.get("structure.build").state == OPEN


def test_build_breaker_recovers_through_half_open():
    clock = SimulatedClock()
    registry = BreakerRegistry(failure_threshold=1, reset_timeout=5.0,
                               clock=clock)
    ctx = ExecutionContext(breakers=registry, clock=clock)
    with activate(ctx):
        with pytest.raises(StructureBuildError):
            guarded_builder("mst", _failing_builder)()
        clock.advance(5.1)
        result = guarded_builder("mst", lambda: "tree")()
    assert result == "tree"
    assert registry.get("structure.build").state == CLOSED
    assert registry.get("structure.build").snapshot().recoveries == 1


def test_open_build_breaker_degrades_query_to_naive():
    catalog = Catalog({"t": make_window_table(150)})
    sql = """
        select g, count(distinct x) over w as uniq
        from t
        window w as (partition by g order by o
                     rows between 10 preceding and current row)
    """
    with Session(catalog) as healthy:
        expected = healthy.execute(sql)
    faults = FaultInjector().plan("structure.build", times=-1)
    with Session(catalog, faults=faults,
                 breaker_threshold=2) as session:
        degraded = session.execute(sql)
        assert_columns_equal(degraded.column("uniq").to_list(),
                             expected.column("uniq").to_list())
        build = session.breakers.get("structure.build").snapshot()
        assert build.trips >= 1
        # Later builds short-circuited instead of re-failing.
        faults.clear()
        again = session.execute(sql)
        assert_columns_equal(again.column("uniq").to_list(),
                             expected.column("uniq").to_list())
        assert session.breakers.get(
            "structure.build").snapshot().short_circuits > 0
        assert session.health_stats().breaker_trips >= 1
        text = session.explain(sql)
        assert "Breakers" in text
        assert "structure.build" in text


# ----------------------------------------------------------------------
# spill breaker integration
# ----------------------------------------------------------------------
def _tree(n=257, seed=3):
    rng = np.random.default_rng(seed)
    return MergeSortTree(rng.permutation(n), fanout=4, aggregate=SUM,
                         payload=rng.normal(size=n))


def test_spill_write_breaker_opens_and_fails_fast(tmp_path):
    clock = SimulatedClock()
    registry = BreakerRegistry(failure_threshold=2, reset_timeout=30.0,
                               clock=clock)
    faults = FaultInjector().plan("spill.write", times=-1)
    manager = SpillManager(str(tmp_path), max_retries=0)
    ctx = ExecutionContext(breakers=registry, faults=faults, clock=clock)
    with activate(ctx):
        for _ in range(2):
            with pytest.raises(OSError):
                manager.spill(_tree())
        with pytest.raises(CircuitOpenError):
            manager.spill(_tree())
    # The short-circuited attempt never reached the fault site.
    assert faults.calls("spill.write") == 2


def test_open_write_breaker_degrades_eviction_to_drop(tmp_path):
    clock = SimulatedClock()
    registry = BreakerRegistry(failure_threshold=1, reset_timeout=30.0,
                               clock=clock)
    registry.get("spill.write").record_failure()  # pre-tripped
    tree = _tree()
    cache = StructureCache(budget_bytes=1, spill_dir=str(tmp_path))
    ctx = ExecutionContext(breakers=registry, clock=clock)
    with activate(ctx):
        cache.acquire(("k",), lambda: tree, pin=False)
    stats = cache.stats()
    assert stats.breaker_skips == 1
    assert stats.spills == 0
    assert len(cache) == 0  # dropped, not spilled


def test_open_read_breaker_rebuilds_from_source(tmp_path):
    clock = SimulatedClock()
    registry = BreakerRegistry(failure_threshold=1, reset_timeout=30.0,
                               clock=clock)
    tree = _tree()
    builds = []

    def builder():
        builds.append(1)
        return tree

    cache = StructureCache(budget_bytes=1, spill_dir=str(tmp_path))
    ctx = ExecutionContext(breakers=registry, clock=clock)
    with activate(ctx):
        cache.acquire(("k",), builder, pin=False)   # build + spill out
        assert cache.stats().spills == 1
        registry.get("spill.read").record_failure()  # trip the breaker
        reloaded = cache.acquire(("k",), builder, pin=False)
    assert reloaded is tree
    assert len(builds) == 2  # rebuilt, not reloaded
    stats = cache.stats()
    assert stats.reloads == 0
    assert stats.breaker_skips == 1
    assert stats.corruptions == 0  # degradation, not corruption
