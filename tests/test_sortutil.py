"""Stable multi-key sorting with NULL placement."""

import numpy as np

from repro.sortutil import SortColumn, sorted_equal_runs, stable_argsort


class TestNumericPath:
    def test_single_key_ascending(self):
        values = np.array([3, 1, 2])
        order = stable_argsort([SortColumn(values)], 3)
        assert order.tolist() == [1, 2, 0]

    def test_descending(self):
        values = np.array([3, 1, 2])
        order = stable_argsort([SortColumn(values, descending=True)], 3)
        assert order.tolist() == [0, 2, 1]

    def test_stability(self):
        values = np.array([1, 1, 0, 1])
        order = stable_argsort([SortColumn(values)], 4)
        assert order.tolist() == [2, 0, 1, 3]

    def test_multi_key(self):
        a = np.array([1, 1, 0])
        b = np.array([5, 3, 9])
        order = stable_argsort([SortColumn(a), SortColumn(b)], 3)
        assert order.tolist() == [2, 1, 0]

    def test_nulls_last_ascending(self):
        values = np.array([3, 0, 1])
        validity = np.array([True, False, True])
        order = stable_argsort(
            [SortColumn(values, validity=validity, nulls_last=True)], 3)
        assert order.tolist() == [2, 0, 1]

    def test_nulls_first(self):
        values = np.array([3, 0, 1])
        validity = np.array([True, False, True])
        order = stable_argsort(
            [SortColumn(values, validity=validity, nulls_last=False)], 3)
        assert order.tolist() == [1, 2, 0]

    def test_empty_columns_identity(self):
        assert stable_argsort([], 4).tolist() == [0, 1, 2, 3]

    def test_floats(self):
        values = np.array([2.5, -1.0, 0.0])
        order = stable_argsort([SortColumn(values)], 3)
        assert order.tolist() == [1, 2, 0]


class TestGenericPath:
    def test_strings(self):
        values = ["pear", "apple", "fig"]
        order = stable_argsort([SortColumn(values)], 3)
        assert order.tolist() == [1, 2, 0]

    def test_strings_descending_with_nulls(self):
        values = ["b", None, "a"]
        validity = np.array([True, False, True])
        order = stable_argsort(
            [SortColumn(values, descending=True, nulls_last=True,
                        validity=validity)], 3)
        assert order.tolist() == [0, 2, 1]

    def test_mixed_numeric_and_string_keys(self):
        nums = np.array([1, 1, 0])
        strs = ["z", "a", "m"]
        order = stable_argsort([SortColumn(nums), SortColumn(strs)], 3)
        assert order.tolist() == [2, 1, 0]

    def test_generic_matches_numeric(self, rng):
        values = rng.integers(0, 10, size=30)
        numeric = stable_argsort([SortColumn(values)], 30)
        generic = stable_argsort([SortColumn(list(values))], 30)
        assert numeric.tolist() == generic.tolist()


class TestPeerGroups:
    def test_equal_runs_numeric(self):
        values = np.array([5, 5, 7, 7, 7, 9])
        order = np.arange(6)
        groups = sorted_equal_runs([SortColumn(values)], order)
        assert groups.tolist() == [0, 0, 1, 1, 1, 2]

    def test_equal_runs_with_nulls(self):
        values = np.array([1, 0, 0, 2])
        validity = np.array([True, False, False, True])
        order = np.array([1, 2, 0, 3])  # nulls first
        groups = sorted_equal_runs(
            [SortColumn(values, validity=validity)], order)
        assert groups.tolist() == [0, 0, 1, 2]

    def test_equal_runs_strings(self):
        values = ["a", "a", "b"]
        groups = sorted_equal_runs([SortColumn(values)], np.arange(3))
        assert groups.tolist() == [0, 0, 1]

    def test_multi_column_runs(self):
        a = np.array([1, 1, 1])
        b = np.array([2, 2, 3])
        groups = sorted_equal_runs([SortColumn(a), SortColumn(b)],
                                   np.arange(3))
        assert groups.tolist() == [0, 0, 1]

    def test_empty(self):
        groups = sorted_equal_runs([SortColumn(np.array([]))],
                                   np.array([], dtype=np.int64))
        assert len(groups) == 0
