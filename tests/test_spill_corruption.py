"""Hardened spill I/O: checksums, retries, atomic writes, orphan sweep.

Satellite coverage for the resilience ISSUE: corrupting a spilled
``.npz`` on disk (bit flips, truncation) must never poison the cache —
the reload detects the damage, counts it, and rebuilds from source.
Persistent write failures degrade evictions to drops without leaking
temp files, and leftover spill files from a crashed process are swept on
startup.
"""

import glob
import os

import numpy as np
import pytest

from repro.cache.spill import SpillManager, sweep_orphans
from repro.cache.store import StructureCache
from repro.errors import SpillCorruptionError
from repro.mst.aggregates import SUM
from repro.mst.tree import MergeSortTree
from repro.errors import QueryCancelledError
from repro.resilience import (
    CancellationToken,
    ExecutionContext,
    FaultInjector,
    SimulatedClock,
    activate,
)


def _tree(n=257, seed=3):
    rng = np.random.default_rng(seed)
    return MergeSortTree(rng.permutation(n), fanout=4, aggregate=SUM,
                         payload=rng.normal(size=n))


def _flip_byte(path, offset=None):
    size = os.path.getsize(path)
    offset = size // 2 if offset is None else offset
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


def _spill_files(directory):
    return sorted(glob.glob(os.path.join(str(directory), "repro-spill-*")))


# ----------------------------------------------------------------------
# checksum verification in the SpillManager
# ----------------------------------------------------------------------
def test_flipped_byte_fails_checksum(tmp_path):
    manager = SpillManager(str(tmp_path))
    path, meta = manager.spill(_tree())
    _flip_byte(path)
    with pytest.raises(SpillCorruptionError) as info:
        manager.load(path, meta)
    assert "checksum" in str(info.value)


def test_truncated_file_fails_checksum(tmp_path):
    manager = SpillManager(str(tmp_path))
    path, meta = manager.spill(_tree())
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size // 3)
    with pytest.raises(SpillCorruptionError):
        manager.load(path, meta)


def test_corruption_is_not_retried(tmp_path):
    sleeps = []
    manager = SpillManager(str(tmp_path), max_retries=5,
                           sleep=sleeps.append)
    path, meta = manager.spill(_tree())
    _flip_byte(path)
    with pytest.raises(SpillCorruptionError):
        manager.load(path, meta)
    assert sleeps == []  # deterministic failure: zero backoff sleeps
    assert manager.retries == 0


def test_transient_read_fault_is_retried(tmp_path):
    sleeps = []
    manager = SpillManager(str(tmp_path), max_retries=2, backoff=0.5,
                           sleep=sleeps.append)
    path, meta = manager.spill(_tree())
    ctx = ExecutionContext(faults=FaultInjector().plan("spill.read",
                                                       times=1))
    with activate(ctx):
        tree = manager.load(path, meta)
    assert tree.aggregate_spec is SUM
    assert manager.retries == 1
    assert ctx.health.retries == 1
    assert sleeps == [0.5]


def test_write_retries_back_off_exponentially(tmp_path):
    sleeps = []
    manager = SpillManager(str(tmp_path), max_retries=2, backoff=0.25,
                           sleep=sleeps.append)
    ctx = ExecutionContext(faults=FaultInjector().plan("spill.write",
                                                       times=2))
    with activate(ctx):
        path, _ = manager.spill(_tree())
    assert os.path.exists(path)
    assert sleeps == [0.25, 0.5]


def test_exhausted_write_retries_leave_no_temp_files(tmp_path):
    manager = SpillManager(str(tmp_path), max_retries=2, backoff=0.0,
                           sleep=lambda _: None)
    ctx = ExecutionContext(faults=FaultInjector().plan("spill.write",
                                                       times=-1))
    with activate(ctx):
        with pytest.raises(OSError):
            manager.spill(_tree())
    assert _spill_files(tmp_path) == []


# ----------------------------------------------------------------------
# backoff on the pluggable clock, deadline- and cancellation-aware
# ----------------------------------------------------------------------
def test_backoff_sleeps_on_the_context_clock(tmp_path):
    clock = SimulatedClock()
    manager = SpillManager(str(tmp_path), max_retries=2, backoff=1.0)
    faults = FaultInjector().plan("spill.write", times=2)
    ctx = ExecutionContext(clock=clock, faults=faults)
    with activate(ctx):
        path, _ = manager.spill(_tree())
    assert os.path.exists(path)
    assert manager.retries == 2
    # No injected sleep: the backoff ran on the simulated clock, taking
    # 1.0 + 2.0 simulated seconds and zero real ones.
    assert clock.monotonic() == 3.0


def test_backoff_aborts_instead_of_outliving_the_deadline(tmp_path):
    clock = SimulatedClock()
    manager = SpillManager(str(tmp_path), max_retries=5, backoff=0.01)
    faults = FaultInjector().plan("spill.write", times=-1)
    ctx = ExecutionContext(timeout=0.005, clock=clock, faults=faults)
    with activate(ctx):
        with pytest.raises(OSError):
            manager.spill(_tree())
    # The very first backoff sleep (0.01s) would already blow the
    # 0.005s budget: the I/O error surfaces at once, with zero retries
    # and zero sleeping.
    assert manager.retries == 0
    assert ctx.health.retries == 0
    assert clock.monotonic() == 0.0
    assert _spill_files(tmp_path) == []


def test_cancellation_during_write_backoff_is_typed_and_clean(tmp_path):
    token = CancellationToken()
    manager = SpillManager(str(tmp_path), max_retries=5, backoff=0.01,
                           sleep=lambda _: token.cancel())
    faults = FaultInjector().plan("spill.write", times=-1)
    ctx = ExecutionContext(token=token, faults=faults)
    with activate(ctx):
        with pytest.raises(QueryCancelledError):
            manager.spill(_tree())
    # The abort is recorded and nothing leaks: no temp files, no final
    # spill file, exactly the one retry whose backoff was interrupted.
    assert ctx.health.cancellations == 1
    assert manager.retries == 1
    assert _spill_files(tmp_path) == []


def test_cancellation_during_cache_reload_is_typed_and_clean(tmp_path):
    token = CancellationToken()
    faults = FaultInjector()
    with StructureCache(budget_bytes=1, spill_dir=str(tmp_path),
                        spill_sleep=lambda _: token.cancel()) as cache:
        spilled = _fill_and_spill(cache, [("a",), ("b",)])
        key, path = next(iter(spilled.items()))
        faults.plan("spill.read", times=-1)
        ctx = ExecutionContext(token=token, faults=faults)
        with activate(ctx):
            with pytest.raises(QueryCancelledError):
                cache.acquire(key, lambda: _tree(seed=9), pin=False)
        assert ctx.health.cancellations == 1
        # An abort is an abort, not a corruption: the spill file stays
        # intact and the entry stays spilled.
        assert cache.stats().corruptions == 0
        assert os.path.exists(path)
        assert all(".tmp" not in name for name in _spill_files(tmp_path))
        # A healthy retry serves the same entry from disk.
        faults.clear()
        with activate(ExecutionContext()):
            tree = cache.acquire(key, lambda: _tree(seed=9), pin=False)
        assert isinstance(tree, MergeSortTree)
        assert cache.stats().reloads == 1


# ----------------------------------------------------------------------
# rebuild-on-corruption through the StructureCache
# ----------------------------------------------------------------------
def _fill_and_spill(cache, keys):
    """Build one tree per key, unpinned, under a tiny budget so all but
    the last are spilled out; returns the spill paths by key."""
    for seed, key in enumerate(keys):
        cache.acquire(key, lambda s=seed: _tree(seed=s), pin=False)
    return {key: cache._entries[key].spill_path
            for key in keys if cache._entries[key].spilled}


def test_cache_rebuilds_after_disk_corruption(tmp_path):
    with StructureCache(budget_bytes=1, spill_dir=str(tmp_path)) as cache:
        spilled = _fill_and_spill(cache, [("a",), ("b",)])
        assert spilled  # tiny budget: at least one entry went to disk
        key, path = next(iter(spilled.items()))
        _flip_byte(path)

        rebuilt = cache.acquire(key, lambda: _tree(seed=99), pin=False)
        assert isinstance(rebuilt, MergeSortTree)
        stats = cache.stats()
        assert stats.corruptions == 1
        assert not os.path.exists(path)  # poisoned file was discarded

        # The cache stays consistent: the rebuilt entry round-trips.
        again = cache.acquire(key, lambda: _tree(seed=99), pin=False)
        assert again is not None
        assert cache.stats().corruptions == 1  # no new corruption


def test_cache_corruption_counts_in_active_context(tmp_path):
    ctx = ExecutionContext()
    with StructureCache(budget_bytes=1, spill_dir=str(tmp_path)) as cache:
        spilled = _fill_and_spill(cache, [("a",), ("b",)])
        key, path = next(iter(spilled.items()))
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
        with activate(ctx):
            cache.acquire(key, lambda: _tree(seed=5), pin=False)
    assert ctx.health.corruptions == 1


def test_eviction_degrades_to_drop_under_persistent_write_faults(tmp_path):
    faults = FaultInjector().plan("spill.write", times=-1)
    ctx = ExecutionContext(faults=faults)
    with StructureCache(budget_bytes=1, spill_dir=str(tmp_path),
                        spill_sleep=lambda _: None) as cache:
        with activate(ctx):
            for seed in range(3):
                cache.acquire((seed,), lambda s=seed: _tree(seed=s),
                              pin=False)
        stats = cache.stats()
        assert stats.spill_failures > 0
        assert stats.spills == 0
        # Failed spills never leak temp (or any) files...
        assert _spill_files(tmp_path) == []
        # ...and the cache still serves queries afterwards.
        assert cache.acquire(("fresh",), _tree, pin=False) is not None


# ----------------------------------------------------------------------
# orphan sweep / temp-file hygiene
# ----------------------------------------------------------------------
def test_sweep_removes_spill_and_temp_orphans_only(tmp_path):
    orphan = tmp_path / "repro-spill-deadbeef.npz"
    half_written = tmp_path / "repro-spill-cafe.tmp.npz"
    unrelated = tmp_path / "keep-me.npz"
    for f in (orphan, half_written, unrelated):
        f.write_bytes(b"junk")
    assert sweep_orphans(str(tmp_path)) == 2
    assert not orphan.exists() and not half_written.exists()
    assert unrelated.exists()


def test_manager_sweeps_provided_directory_on_first_use(tmp_path):
    (tmp_path / "repro-spill-stale.npz").write_bytes(b"junk")
    manager = SpillManager(str(tmp_path))
    path, _ = manager.spill(_tree())  # first use opens the directory
    assert manager.orphans_swept == 1
    assert _spill_files(tmp_path) == [path]


def test_discard_removes_file_and_checksum(tmp_path):
    manager = SpillManager(str(tmp_path))
    path, meta = manager.spill(_tree())
    manager.discard(path)
    assert not os.path.exists(path)
    # A recreated file at the same path has no stale checksum attached.
    assert path not in manager._checksums
