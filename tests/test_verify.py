"""Structural self-verification and sampled shadow verification.

Unit coverage for :mod:`repro.resilience.verify` (value comparison,
result diffing, invariant dispatch over every structure kind), the
cache's verify-on-reload trust boundary (a corrupt structure that
deserialised cleanly is rebuilt, never served), and the evaluator
dispatch's shadow sampling (a poisoned fast evaluator is caught by the
naive oracle and surfaces as a typed
:class:`~repro.errors.VerificationError`, never as a wrong result).
"""

import math

import numpy as np
import pytest

from conftest import make_window_table
from repro import Catalog, Session
from repro.cache.store import StructureCache
from repro.errors import VerificationError
from repro.mst.aggregates import SUM
from repro.mst.tree import MergeSortTree
from repro.ostree.cbtree import CountedBTree
from repro.resilience import ExecutionContext, activate
from repro.resilience.verify import (
    compare_results,
    values_match,
    verify_structure,
)
from repro.segtree.tree import SegmentTree
from repro.window.calls import WindowCall
from repro.window.evaluators import distinct as distinct_mod
from repro.window.frame import (
    FrameSpec,
    OrderItem,
    WindowSpec,
    current_row,
    preceding,
)
from repro.window.operator import window_query


# ----------------------------------------------------------------------
# values_match / compare_results
# ----------------------------------------------------------------------
def test_values_match_nulls():
    assert values_match(None, None)
    assert not values_match(None, 0)
    assert not values_match(0, None)


def test_values_match_floats_tolerate_summation_drift():
    assert values_match(0.1 + 0.2, 0.3)
    assert not values_match(0.3, 0.3001)
    assert values_match(float("nan"), float("nan"))
    assert not values_match(float("nan"), 0.0)
    assert values_match(2.0, 2)  # mixed float/int


def test_values_match_exact_for_non_floats():
    assert values_match(3, 3)
    assert not values_match(3, 4)
    assert values_match("a", "a")


def test_compare_results_finds_first_divergence():
    assert compare_results([1, 2, 3], [1, 2, 3]) is None
    assert compare_results([1, 9, 3], [1, 2, 3]) == (1, 9, 2)
    assert compare_results([], []) is None


def test_compare_results_length_mismatch():
    assert compare_results([1, 2, 3], [1, 2]) == (2, 3, None)
    assert compare_results([1], [1, 7]) == (1, None, 7)


# ----------------------------------------------------------------------
# verify_structure dispatch
# ----------------------------------------------------------------------
def _mst(n=257, seed=3):
    rng = np.random.default_rng(seed)
    return MergeSortTree(rng.permutation(n), fanout=4, aggregate=SUM,
                         payload=rng.normal(size=n))


def test_structures_without_invariants_pass():
    verify_structure(object())
    verify_structure([1, 2, 3])


def test_healthy_structures_pass():
    verify_structure(_mst())
    verify_structure(SegmentTree(np.arange(33, dtype=float), kind="sum"))
    tree = CountedBTree(order=4)
    for key in range(50):
        tree.insert(key % 7)
    verify_structure(tree)


def test_corrupt_mst_is_rejected_with_kind_in_message():
    tree = _mst()
    # Break the top level's sortedness/permutation invariant the way a
    # decoder bug would: one key silently off by one.
    tree.levels.keys[-1][0] = tree.levels.keys[-1][1] + 1
    with pytest.raises(VerificationError) as info:
        verify_structure(tree)
    assert "MergeSortTree" in str(info.value)


def test_corrupt_segment_tree_is_rejected():
    tree = SegmentTree(np.arange(33, dtype=float), kind="sum")
    tree.levels[1][0] += 1.0
    with pytest.raises(VerificationError) as info:
        verify_structure(tree)
    assert "SegmentTree" in str(info.value)


def test_corrupt_cbtree_size_cache_is_rejected():
    tree = CountedBTree(order=4)
    for key in range(50):
        tree.insert(key)
    tree.root.size += 1
    with pytest.raises(VerificationError) as info:
        verify_structure(tree)
    assert "CountedBTree" in str(info.value)


def test_corrupt_cbtree_separator_key_is_rejected():
    tree = CountedBTree(order=4)
    for key in range(50):
        tree.insert(key)
    assert not tree.root.is_leaf
    # A corrupted separator breaks cross-node order even though every
    # node stays locally sorted.
    tree.root.keys[0] += 100
    with pytest.raises(VerificationError):
        verify_structure(tree)


# ----------------------------------------------------------------------
# verify-on-reload: the cache's trust boundary
# ----------------------------------------------------------------------
def _poison_reload(cache, monkeypatch):
    """Make every spill reload return a silently-corrupt tree, the way
    a CRC-surviving bit flip or a decoder bug would."""
    real_load = cache._spill.load

    def corrupt_load(path, meta):
        tree = real_load(path, meta)
        tree.levels.keys[-1][0] = tree.levels.keys[-1][1] + 1
        return tree

    monkeypatch.setattr(cache._spill, "load", corrupt_load)


def test_reload_verification_rebuilds_corrupt_structure(tmp_path,
                                                        monkeypatch):
    builds = []

    def builder():
        builds.append(1)
        return _mst()

    with StructureCache(budget_bytes=1, spill_dir=str(tmp_path)) as cache:
        ctx = ExecutionContext()
        with activate(ctx):
            cache.acquire(("k",), builder, pin=False)  # build + spill out
            assert cache.stats().spills == 1
            _poison_reload(cache, monkeypatch)
            reloaded = cache.acquire(("k",), builder, pin=False)
        # The corrupt reload was rejected and rebuilt from source.
        verify_structure(reloaded)
        assert len(builds) == 2
        stats = cache.stats()
        assert stats.verifications == 1
        assert stats.verify_failures == 1
        assert stats.corruptions == 1
        assert stats.reloads == 0
        assert ctx.health.verification_failures == 1
        assert ctx.health.corruptions == 1


def test_clean_reload_verifies_and_serves(tmp_path):
    with StructureCache(budget_bytes=1, spill_dir=str(tmp_path)) as cache:
        ctx = ExecutionContext()
        with activate(ctx):
            cache.acquire(("k",), _mst, pin=False)
            reloaded = cache.acquire(("k",), _mst, pin=False)
        verify_structure(reloaded)
        stats = cache.stats()
        assert stats.reloads == 1
        assert stats.verifications == 1
        assert stats.verify_failures == 0
        assert ctx.health.verifications == 1
        assert ctx.health.verification_failures == 0


def test_verify_reload_false_skips_the_check(tmp_path, monkeypatch):
    with StructureCache(budget_bytes=1, spill_dir=str(tmp_path),
                        verify_reload=False) as cache:
        cache.acquire(("k",), _mst, pin=False)
        _poison_reload(cache, monkeypatch)
        cache.acquire(("k",), _mst, pin=False)
        stats = cache.stats()
        assert stats.verifications == 0
        assert stats.reloads == 1  # the corrupt tree went undetected


# ----------------------------------------------------------------------
# shadow sampling
# ----------------------------------------------------------------------
def test_shadow_sample_rate_bounds():
    ctx = ExecutionContext(verify_rate=0.0)
    assert not any(ctx.shadow_sample() for _ in range(100))
    ctx = ExecutionContext(verify_rate=1.0)
    assert all(ctx.shadow_sample() for _ in range(100))
    with pytest.raises(ValueError):
        ExecutionContext(verify_rate=1.5)
    with pytest.raises(ValueError):
        ExecutionContext(verify_rate=-0.1)


def test_shadow_sample_is_deterministic_and_seeded():
    a = ExecutionContext(verify_rate=0.3, verify_seed=7)
    b = ExecutionContext(verify_rate=0.3, verify_seed=7)
    seq_a = [a.shadow_sample() for _ in range(200)]
    seq_b = [b.shadow_sample() for _ in range(200)]
    assert seq_a == seq_b
    assert 10 < sum(seq_a) < 120  # roughly the asked-for rate
    c = ExecutionContext(verify_rate=0.3, verify_seed=8)
    assert [c.shadow_sample() for _ in range(200)] != seq_a


# ----------------------------------------------------------------------
# shadow verification end to end
# ----------------------------------------------------------------------
TABLE = make_window_table(n=120, seed=11)
SPEC = WindowSpec(partition_by=("g",), order_by=(OrderItem("o"),),
                  frame=FrameSpec.rows(preceding(8), current_row()))


def _poison_distinct(monkeypatch):
    """Corrupt the fast distinct evaluator's first output row; the
    naive oracle path stays honest."""
    original = distinct_mod.evaluate

    def poisoned(call, part):
        result = original(call, part)
        # Evaluators may return a list or an ndarray; len() covers both.
        if call.algorithm != "naive" and len(result):
            result = (result.tolist() if hasattr(result, "tolist")
                      else list(result))
            result[0] = (result[0] or 0) + 1
        return result

    monkeypatch.setattr(distinct_mod, "evaluate", poisoned)


def test_shadow_verification_catches_poisoned_evaluator(monkeypatch):
    _poison_distinct(monkeypatch)
    call = WindowCall("count", ["x"], distinct=True)
    ctx = ExecutionContext(verify_rate=1.0)
    with activate(ctx):
        with pytest.raises(VerificationError) as info:
            window_query(TABLE, [call], SPEC)
    assert "count[mst]" in str(info.value)
    assert ctx.health.verification_failures >= 1


def test_rate_zero_never_invokes_the_oracle(monkeypatch):
    # With sampling off the poisoned result sails through: the test
    # documents that rate 0 really is "no shadow checks at all".
    _poison_distinct(monkeypatch)
    call = WindowCall("count", ["x"], distinct=True)
    ctx = ExecutionContext()
    with activate(ctx):
        window_query(TABLE, [call], SPEC)
    assert ctx.health.verifications == 0


def test_healthy_shadow_verification_is_silent():
    call = WindowCall("count", ["x"], distinct=True)
    baseline = ExecutionContext()
    with activate(baseline):
        expected = window_query(TABLE, [call], SPEC)
    ctx = ExecutionContext(verify_rate=1.0)
    with activate(ctx):
        verified = window_query(TABLE, [call], SPEC)
    assert (verified.columns[-1].to_list()
            == expected.columns[-1].to_list())
    assert ctx.health.verifications > 0
    assert ctx.health.verification_failures == 0


def test_session_level_shadow_verification():
    catalog = Catalog({"t": make_window_table(100)})
    sql = """
        select g, count(distinct x) over w as uniq
        from t
        window w as (partition by g order by o
                     rows between 10 preceding and current row)
    """
    with Session(catalog, verify_rate=1.0) as session:
        session.execute(sql)
        health = session.health_stats()
        assert health.verifications > 0
        assert health.verification_failures == 0
        # Routine verification is not an "event": EXPLAIN stays quiet.
        assert "Resilience" not in session.explain(sql)
