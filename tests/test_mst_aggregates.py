"""AggregateSpec semantics and prefix kernels."""

import numpy as np
import pytest

from repro.mst.aggregates import (
    AVG,
    COUNT,
    MAX,
    MIN,
    SUM,
    _segmented_cumulative,
    make_udaf,
)


class TestBuiltins:
    def test_sum_merge(self):
        assert SUM.merge(None, 3) == 3
        assert SUM.merge(3, None) == 3
        assert SUM.merge(3, 4) == 7
        assert SUM.identity is None
        assert SUM.finalize(10) == 10

    def test_count(self):
        state = COUNT.identity
        for value in [5, None, "x"]:
            state = COUNT.merge(state, COUNT.lift(value))
        assert COUNT.finalize(state) == 3

    def test_min_max(self):
        assert MIN.merge(MIN.lift(5), MIN.lift(2)) == 2
        assert MAX.merge(MAX.lift(5), MAX.lift(2)) == 5
        assert MIN.merge(None, 7) == 7

    def test_avg(self):
        state = AVG.identity
        for value in [2.0, 4.0, 9.0]:
            state = AVG.merge(state, AVG.lift(value))
        assert AVG.finalize(state) == pytest.approx(5.0)
        assert AVG.finalize(AVG.identity) is None

    def test_merge_many(self):
        states = [SUM.lift(v) for v in [1, 2, 3]]
        assert SUM.merge_many(states) == 6
        assert SUM.merge_many([]) is None


class TestPrefixKernels:
    @pytest.mark.parametrize("run_length", [1, 2, 3, 4, 7, 16])
    def test_sum_prefix(self, run_length, rng):
        values = rng.normal(size=23)
        got = SUM.prefix_numpy(values, run_length)
        for start in range(0, 23, run_length):
            stop = min(start + run_length, 23)
            running = 0.0
            for i in range(start, stop):
                running += values[i]
                assert got[i] == pytest.approx(running)

    @pytest.mark.parametrize("spec,op", [(MIN, min), (MAX, max)])
    def test_min_max_prefix(self, spec, op, rng):
        values = rng.integers(0, 100, size=19).astype(np.float64)
        got = spec.prefix_numpy(values, 4)
        for start in range(0, 19, 4):
            stop = min(start + 4, 19)
            for i in range(start, stop):
                assert got[i] == op(values[start:i + 1])

    def test_count_prefix(self):
        got = COUNT.prefix_numpy(np.zeros(10), 4)
        assert got.tolist() == [1, 2, 3, 4, 1, 2, 3, 4, 1, 2]

    def test_segmented_cumulative_empty(self):
        out = _segmented_cumulative(np.array([]), 4, np.cumsum)
        assert len(out) == 0


class TestUdaf:
    def test_string_concat_udaf(self):
        spec = make_udaf(
            "concat", identity="",
            lift=lambda v: str(v),
            merge=lambda a, b: a + b)
        state = spec.identity
        for value in ["a", "b", "c"]:
            state = spec.merge(state, spec.lift(value))
        assert spec.finalize(state) == "abc"
        assert spec.prefix_numpy is None

    def test_bit_or_udaf(self):
        spec = make_udaf("bit_or", identity=0, lift=lambda v: v,
                         merge=lambda a, b: a | b)
        assert spec.merge_many([1, 2, 4]) == 7
