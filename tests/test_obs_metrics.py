"""The metrics registry: counters, gauges, histograms, exposition."""

import json
import os
import threading

import pytest

from repro.obs import DEFAULT_BUCKETS, MetricsRegistry

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "metrics.prom")


def seeded_registry() -> MetricsRegistry:
    """A registry with a fixed population — shared by the golden test."""
    registry = MetricsRegistry()
    queries = registry.counter("repro_queries_total",
                               "Queries finished, by outcome.",
                               labelnames=("outcome",))
    queries.inc(outcome="ok")
    queries.inc(outcome="ok")
    queries.inc(outcome="timeout")
    bytes_in_use = registry.gauge("repro_cache_bytes_in_use",
                                  "Resident structure bytes.")
    bytes_in_use.set(2048)
    latency = registry.histogram("repro_query_seconds",
                                 "Query wall time.",
                                 buckets=(0.005, 0.05, 0.5))
    latency.observe(0.004)
    latency.observe(0.04)
    latency.observe(0.04)
    latency.observe(9.0)
    return registry


class TestCounter:
    def test_inc_and_value(self):
        counter = MetricsRegistry().counter("c", labelnames=("k",))
        counter.inc(k="a")
        counter.inc(2.5, k="a")
        assert counter.value(k="a") == pytest.approx(3.5)
        assert counter.value(k="other") == 0.0

    def test_set_total_mirrors_an_external_count(self):
        counter = MetricsRegistry().counter("c")
        counter.set_total(41)
        counter.inc()
        assert counter.value() == 42

    def test_wrong_label_set_raises(self):
        counter = MetricsRegistry().counter("c", labelnames=("k",))
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc(wrong="x")
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc()


class TestGauge:
    def test_set_goes_both_ways(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.set(3)
        assert gauge.value() == 3


class TestHistogram:
    def test_buckets_are_cumulative(self):
        histogram = MetricsRegistry().histogram(
            "h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        (snap,) = histogram.snapshot_into()
        assert snap["buckets"] == {"1": 1, "10": 2, "100": 3}
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(555.5)

    def test_default_buckets_are_sorted_latency_shaped(self):
        assert DEFAULT_BUCKETS == tuple(sorted(DEFAULT_BUCKETS))
        assert DEFAULT_BUCKETS[0] == 0.001
        assert DEFAULT_BUCKETS[-1] == 10.0


class TestRegistry:
    def test_getters_are_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c", labelnames=("k",))
        again = registry.counter("c", labelnames=("k",))
        assert first is again

    def test_type_or_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("c", labelnames=("k",))
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("c", labelnames=("k",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("c", labelnames=("other",))

    def test_collectors_run_at_scrape_time(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("live")
        state = {"value": 1}
        registry.add_collector(lambda: gauge.set(state["value"]))
        assert "live 1" in registry.expose()
        state["value"] = 7
        assert "live 7" in registry.expose()

    def test_exposition_matches_the_golden_file(self):
        text = seeded_registry().expose()
        with open(GOLDEN) as handle:
            assert text == handle.read()

    def test_exposition_is_sorted_and_stable(self):
        first = seeded_registry().expose()
        second = seeded_registry().expose()
        assert first == second
        names = [line.split(" ", 2)[2].split(" ")[0]
                 for line in first.splitlines()
                 if line.startswith("# TYPE")]
        assert names == sorted(names)

    def test_series_sorted_by_label_values(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", labelnames=("k",))
        counter.inc(k="zebra")
        counter.inc(k="apple")
        lines = [line for line in registry.expose().splitlines()
                 if line.startswith("c{")]
        assert lines == ['c{k="apple"} 1', 'c{k="zebra"} 1']

    def test_json_snapshot(self):
        payload = json.loads(seeded_registry().to_json())
        queries = payload["repro_queries_total"]
        assert queries["type"] == "counter"
        assert queries["series"] == [
            {"labels": {"outcome": "ok"}, "value": 2.0},
            {"labels": {"outcome": "timeout"}, "value": 1.0},
        ]

    def test_thread_safety_under_concurrent_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 4000

    def test_label_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", labelnames=("k",))
        counter.inc(k='quo"te\nnew')
        line = [ln for ln in registry.expose().splitlines()
                if ln.startswith("c{")][0]
        assert line == 'c{k="quo\\"te\\nnew"} 1'
