"""Every shipped example must run to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


def test_examples_present():
    names = [p.name for p in EXAMPLES]
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples should print something"
