"""The session memory governor: ledger, backpressure, integration.

Covers the byte ledger in isolation (soft vs hard reservations, waits
on the pluggable clock, cache-charge mirroring), the typed 503 wire
mapping, the ``memory.reserve`` fault site, Session-level admission
(batch shed vs interactive pressure), the Memory sections in EXPLAIN /
``/v1/healthz`` / metrics, and a small multi-tenant chaos leg: a
4-tenant server under a tiny budget keeps answering interactive
traffic with correct results or *typed* errors while batch traffic is
shed — never an untyped 500, never a crash.
"""

import asyncio
import json
import threading
from http.client import HTTPConnection

import pytest

from conftest import make_window_table
from repro.errors import MemoryPressureError, ResourceLimitError
from repro.resilience import FaultInjector
from repro.resilience.context import SimulatedClock
from repro.resilience.memory import MemoryGovernor, table_bytes
from repro.serve import QueryService, ServerThread, TenantPolicy, \
    TenantRegistry
from repro.serve.wire import error_response
from repro.sql import Catalog, Session, SessionConfig
from repro.sql.config import QueryOptions

WINDOW_SQL = """
    select g, sum(x) over w as s
    from t
    window w as (partition by g order by o
                 rows between 5 preceding and current row)
"""


def _catalog(n=120):
    return Catalog({"t": make_window_table(n)})


# ----------------------------------------------------------------------
# the ledger in isolation
# ----------------------------------------------------------------------
class TestLedger:
    def test_unlimited_tracks_but_never_refuses(self):
        gov = MemoryGovernor()
        assert not gov.limited
        assert gov.available() is None
        with gov.reserve(1 << 40, tag="query"):
            assert gov.used == 1 << 40
            assert not gov.over_budget
        assert gov.used == 0
        stats = gov.stats()
        assert stats.reservations == 1
        assert stats.releases == 1
        assert stats.peak_bytes == 1 << 40
        assert not stats.eventful  # quiet: no budget, no pressure

    def test_release_is_idempotent(self):
        gov = MemoryGovernor(budget_bytes=1000)
        res = gov.reserve(600)
        res.release()
        res.release()
        assert gov.used == 0
        assert gov.stats().releases == 1

    def test_by_tag_breakdown(self):
        gov = MemoryGovernor(budget_bytes=10_000)
        gov.charge(1000, tag="structure_cache")
        gov.charge(500, tag="plan_cache")
        res = gov.reserve(200, tag="query")
        assert gov.stats().by_tag == {"structure_cache": 1000,
                                      "plan_cache": 500, "query": 200}
        res.release()
        gov.release(1000, tag="structure_cache")
        assert gov.stats().by_tag == {"plan_cache": 500}

    def test_soft_overcommit_records_pressure(self):
        gov = MemoryGovernor(budget_bytes=1000)
        with gov.reserve(5000, hard=False):
            assert gov.over_budget
            assert gov.stats().pressure_events == 1

    def test_hard_oversized_is_denied_immediately(self):
        gov = MemoryGovernor(budget_bytes=1000, clock=SimulatedClock())
        with pytest.raises(MemoryPressureError) as info:
            gov.reserve(5000, hard=True)
        assert info.value.requested == 5000
        assert info.value.retry_after >= 1.0
        stats = gov.stats()
        assert stats.denials == 1
        assert stats.waits == 0  # no wait could ever satisfy it

    def test_hard_wait_expires_to_typed_shed(self):
        clock = SimulatedClock()
        gov = MemoryGovernor(budget_bytes=1000, clock=clock)
        held = gov.reserve(900, hard=False)
        with pytest.raises(MemoryPressureError):
            gov.reserve(500, hard=True, wait_timeout=0.5)
        stats = gov.stats()
        assert stats.waits == 1
        assert stats.denials == 1
        held.release()

    def test_hard_wait_succeeds_when_bytes_free_up(self):
        gov = MemoryGovernor(budget_bytes=1000)
        held = gov.reserve(900, hard=False)

        class ReleasingClock:
            """First sleep slice releases the blocking reservation."""

            def __init__(self):
                self.now = 0.0

            def monotonic(self):
                return self.now

            def sleep(self, seconds):
                self.now += seconds
                held.release()

        gov._clock = ReleasingClock()
        res = gov.reserve(500, hard=True, wait_timeout=5.0)
        assert res.nbytes == 500
        stats = gov.stats()
        assert stats.waits == 1
        assert stats.denials == 0

    def test_guard_structure_refuses_only_oversized(self):
        gov = MemoryGovernor(budget_bytes=1000)
        gov.guard_structure("mst", 1000)  # fits the whole budget
        with pytest.raises(MemoryPressureError):
            gov.guard_structure("mst", 1001)
        assert gov.stats().structure_denials == 1

    def test_memory_pressure_is_a_resource_limit_error(self):
        # Rides the existing FALLBACK_ERRORS ladder and wire mapping.
        assert issubclass(MemoryPressureError, ResourceLimitError)

    def test_use_out_of_core_modes(self):
        assert MemoryGovernor(out_of_core=True).use_out_of_core(1)
        assert not MemoryGovernor(out_of_core=False,
                                  budget_bytes=1).use_out_of_core(99)
        auto = MemoryGovernor(budget_bytes=1000)
        assert not auto.use_out_of_core(500)
        assert auto.use_out_of_core(1500)
        assert not MemoryGovernor().use_out_of_core(1 << 40)

    def test_table_bytes_counts_columns_and_validity(self):
        table = make_window_table(64)
        nbytes = table_bytes(table)
        assert nbytes > 64 * 8  # at least one int64 column


# ----------------------------------------------------------------------
# wire mapping
# ----------------------------------------------------------------------
def test_memory_pressure_maps_to_503_with_retry_after():
    exc = MemoryPressureError("no bytes", requested=100, available=10,
                              retry_after=7.0)
    status, headers, body = error_response(exc)
    assert status == 503
    assert headers["Retry-After"] == "7"
    assert body["error"]["code"] == "MEMORY_PRESSURE"
    assert body["error"]["type"] == "MemoryPressureError"


# ----------------------------------------------------------------------
# fault site
# ----------------------------------------------------------------------
def test_memory_reserve_fault_site_sheds_typed():
    faults = FaultInjector().plan(
        "memory.reserve", times=1,
        exception=lambda: MemoryPressureError("injected", retry_after=2.0))
    session = Session(_catalog(), config=SessionConfig(faults=faults))
    with pytest.raises(MemoryPressureError):
        session.execute(WINDOW_SQL)
    assert faults.fired("memory.reserve") == 1
    # The site only fires once per query; the next one runs clean.
    result = session.execute(WINDOW_SQL)
    assert result.stats.outcome == "ok"
    session.close()


# ----------------------------------------------------------------------
# session integration
# ----------------------------------------------------------------------
class TestSessionIntegration:
    def test_budgeted_session_runs_and_reports(self):
        session = Session(_catalog(), config=SessionConfig(
            memory_budget_bytes=64 << 20))
        baseline = Session(_catalog()).execute(WINDOW_SQL)
        result = session.execute(WINDOW_SQL)
        assert result == baseline
        stats = session.memory.stats()
        assert stats.budget_bytes == 64 << 20
        assert stats.reservations >= 1
        assert stats.releases == stats.reservations
        assert stats.reserved_bytes == 0  # everything released
        assert "structure_cache" in stats.by_tag or \
            "plan_cache" in stats.by_tag
        session.close()

    def test_batch_estimate_over_budget_is_shed(self):
        # Budget below the fixed per-query overhead: every batch
        # reservation exceeds the whole budget and sheds immediately.
        session = Session(_catalog(), config=SessionConfig(
            memory_budget_bytes=10_000))
        with pytest.raises(MemoryPressureError):
            session.execute(WINDOW_SQL,
                            options=QueryOptions(priority="batch"))
        # Interactive overcommits softly and still answers.
        result = session.execute(WINDOW_SQL)
        assert result.stats.outcome == "ok"
        stats = session.memory.stats()
        assert stats.denials >= 1
        assert stats.pressure_events >= 1
        session.close()

    def test_explain_shows_memory_section_when_budgeted(self):
        session = Session(_catalog(), config=SessionConfig(
            memory_budget_bytes=64 << 20))
        plan = session.explain(WINDOW_SQL)
        assert "Memory" in plan
        assert "budget=67,108,864 B" in plan
        session.close()

    def test_explain_quiet_without_budget(self, monkeypatch):
        # The CI soak leg budgets every session via the environment;
        # this test is about the *unbudgeted* rendering, so pin it.
        monkeypatch.delenv("REPRO_MEMORY_BUDGET", raising=False)
        session = Session(_catalog())
        plan = session.explain(WINDOW_SQL)
        assert "Memory" not in plan
        session.close()

    def test_metrics_export_memory_gauges(self):
        session = Session(_catalog(), config=SessionConfig(
            memory_budget_bytes=64 << 20, metrics=True))
        session.execute(WINDOW_SQL)
        text = session.metrics_text()
        assert "repro_memory_budget_bytes 67108864" in text
        assert "repro_memory_reservations_total" in text
        assert "repro_memory_peak_bytes" in text
        session.close()


# ----------------------------------------------------------------------
# serving tier: healthz ledger + 4-tenant chaos leg under tiny budget
# ----------------------------------------------------------------------
def test_healthz_reports_memory_ledger():
    session = Session(_catalog(), config=SessionConfig(
        memory_budget_bytes=32 << 20))
    service = QueryService(session, own_session=True)
    try:
        health = asyncio.run(service.healthz())
        assert health["memory"]["budget_bytes"] == 32 << 20
        assert "used_bytes" in health["memory"]
    finally:
        service.close()


def _post(port, path, payload, tenant):
    conn = HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("POST", path, body=json.dumps(payload),
                     headers={"Content-Type": "application/json",
                              "x-repro-tenant": tenant})
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def test_chaos_tiny_budget_multi_tenant_stays_typed():
    """4 tenants hammer a server whose budget sheds every batch query:
    interactive answers stay correct, batch rejections are typed 503s
    with MEMORY_PRESSURE, and the process never sees an untyped 500."""
    faults = FaultInjector().plan(
        "memory.reserve", times=3, after=5,
        exception=lambda: MemoryPressureError("injected pressure",
                                              retry_after=1.0))
    session = Session(_catalog(200), config=SessionConfig(
        memory_budget_bytes=10_000,  # < per-query overhead: batch sheds
        faults=faults, metrics=True))
    oracle = Session(_catalog(200)).execute(WINDOW_SQL)
    from repro.wire import to_jsonable
    expected_rows = to_jsonable(oracle.to_rows())
    tenants = TenantRegistry(
        policies={"etl": TenantPolicy(priority="batch")},
        clock=session.clock)
    service = QueryService(session, tenants=tenants, own_session=True)
    failures = []
    batch_sheds = []

    def hammer(tenant):
        for _ in range(6):
            try:
                status, out = _post(port, "/v1/execute",
                                    {"sql": WINDOW_SQL}, tenant)
            except Exception as exc:  # connection-level crash = fail
                failures.append((tenant, repr(exc)))
                return
            if status == 200:
                if out["rows"] != expected_rows:
                    failures.append((tenant, "wrong rows"))
            elif status in (408, 429, 503):
                if "error" not in out or "code" not in out["error"]:
                    failures.append((tenant, f"untyped {status}"))
                elif out["error"]["code"] == "MEMORY_PRESSURE":
                    batch_sheds.append(tenant)
            else:
                failures.append((tenant, f"unexpected status {status}"))

    with ServerThread(service) as handle:
        port = handle.port
        threads = [threading.Thread(target=hammer, args=(name,))
                   for name in ("dash-1", "dash-2", "dash-3", "etl")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert failures == []
        # The batch tenant (and/or injected faults) hit typed sheds.
        assert batch_sheds
        # The server is still healthy and reports the ledger.
        conn = HTTPConnection("127.0.0.1", port, timeout=30)
        conn.request("GET", "/v1/healthz")
        health = json.loads(conn.getresponse().read())
        conn.close()
        assert health["memory"]["budget_bytes"] == 10_000
        assert health["memory"]["denials"] >= 1
    service.close()
