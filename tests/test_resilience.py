"""Execution guardrails: deadlines, cancellation, limits, fault plans.

Unit coverage for :mod:`repro.resilience` plus the integration points
the ISSUE acceptance criteria name: queries under an expired deadline or
a set token raise their typed error at a batch boundary (never hang),
pool workers inherit the spawning query's context and fail fast, and
guardrail telemetry surfaces through ``Session.health_stats`` and
EXPLAIN.
"""

import threading

import pytest

from conftest import make_window_table
from repro import Catalog, Session
from repro.errors import (
    ParallelExecutionError,
    QueryCancelledError,
    QueryTimeoutError,
    ResourceLimitError,
    StructureBuildError,
)
from repro.parallel.threads import _run_tasks, task_slices
from repro.resilience import (
    AMBIENT,
    CancellationToken,
    ExecutionContext,
    FaultInjector,
    HealthCounters,
    NO_FAULTS,
    ResourceLimits,
    SimulatedClock,
    activate,
    current_context,
    fallback_call,
    guarded_builder,
)

SQL = """
    select g, count(distinct x) over w as uniq,
           percentile_disc(0.5, order by x) over w as med
    from t
    window w as (partition by g order by o
                 rows between 10 preceding and current row)
"""


def _catalog(n=150):
    return Catalog({"t": make_window_table(n)})


class ExpiringClock(SimulatedClock):
    """Advances one second per read, so any deadline soon expires."""

    def monotonic(self):
        value = super().monotonic()
        self.advance(1.0)
        return value


# ----------------------------------------------------------------------
# clock / token / limits
# ----------------------------------------------------------------------
def test_simulated_clock_advances_and_sleeps_instantly():
    clock = SimulatedClock(start=5.0)
    assert clock.monotonic() == 5.0
    clock.advance(2.5)
    clock.sleep(1.5)  # must not block; advances instead
    assert clock.monotonic() == 9.0


def test_cancellation_token_is_sticky_and_thread_safe():
    token = CancellationToken()
    assert not token.cancelled
    threading.Thread(target=token.cancel).start()
    for _ in range(1000):
        if token.cancelled:
            break
    assert token.cancelled


def test_resource_limits_unlimited_flag():
    assert ResourceLimits().unlimited
    assert not ResourceLimits(max_rows=5).unlimited
    assert not ResourceLimits(max_structure_bytes=5).unlimited


# ----------------------------------------------------------------------
# ExecutionContext
# ----------------------------------------------------------------------
def test_unarmed_checkpoint_is_a_noop():
    ctx = ExecutionContext()
    ctx.checkpoint()  # must not raise
    ctx.tick(0)
    assert ctx.remaining() is None


def test_deadline_expiry_raises_timeout_and_counts():
    clock = SimulatedClock()
    ctx = ExecutionContext(timeout=10.0, clock=clock)
    ctx.checkpoint()  # within deadline
    clock.advance(11.0)
    with pytest.raises(QueryTimeoutError):
        ctx.checkpoint()
    assert ctx.health.timeouts == 1
    assert ctx.remaining() < 0


def test_absolute_deadline_wins_over_timeout():
    clock = SimulatedClock(start=100.0)
    ctx = ExecutionContext(timeout=1000.0, deadline=101.0, clock=clock)
    clock.advance(2.0)
    with pytest.raises(QueryTimeoutError):
        ctx.checkpoint()


def test_cancellation_checkpoint():
    token = CancellationToken()
    ctx = ExecutionContext(token=token)
    ctx.checkpoint()
    token.cancel()
    with pytest.raises(QueryCancelledError):
        ctx.checkpoint()
    assert ctx.health.cancellations == 1


def test_tick_checks_on_stride_boundaries_only():
    clock = SimulatedClock()
    ctx = ExecutionContext(timeout=1.0, clock=clock)
    clock.advance(5.0)
    ctx.tick(1)      # off-stride: no check
    ctx.tick(1023)   # off-stride: no check
    with pytest.raises(QueryTimeoutError):
        ctx.tick(1024)


def test_guard_rows_and_structure_bytes():
    ctx = ExecutionContext(limits=ResourceLimits(max_rows=10,
                                                 max_structure_bytes=100))
    ctx.guard_rows(10)
    with pytest.raises(ResourceLimitError):
        ctx.guard_rows(11)
    ctx.guard_structure_bytes("mst", 100)
    with pytest.raises(ResourceLimitError):
        ctx.guard_structure_bytes("mst", 101)
    assert ctx.health.limit_hits == 2


def test_activate_is_thread_local_and_restores():
    ctx = ExecutionContext(timeout=1.0, clock=SimulatedClock())
    assert current_context() is AMBIENT
    with activate(ctx):
        assert current_context() is ctx
        seen = []
        thread = threading.Thread(
            target=lambda: seen.append(current_context()))
        thread.start()
        thread.join()
        # other threads do NOT see this thread's context implicitly
        assert seen == [AMBIENT]
    assert current_context() is AMBIENT


# ----------------------------------------------------------------------
# fault injector
# ----------------------------------------------------------------------
def test_fault_plan_schedule_after_and_times():
    faults = FaultInjector().plan("spill.read", times=2, after=1)
    faults.fire("spill.read")  # call 1: before the window
    for _ in range(2):         # calls 2, 3: inside the window
        with pytest.raises(OSError):
            faults.fire("spill.read")
    faults.fire("spill.read")  # call 4: window exhausted
    assert faults.calls("spill.read") == 4
    assert faults.fired("spill.read") == 2


def test_fault_plan_forever_and_clear():
    faults = FaultInjector().plan("structure.build", times=-1)
    for _ in range(5):
        with pytest.raises(RuntimeError):
            faults.fire("structure.build")
    faults.clear("structure.build")
    faults.fire("structure.build")  # no plan left
    assert not faults.armed


def test_fault_custom_exception_and_no_faults_singleton():
    faults = FaultInjector().plan("parallel.worker",
                                  exception=lambda: ValueError("boom"))
    with pytest.raises(ValueError):
        faults.fire("parallel.worker")
    NO_FAULTS.fire("anything")  # the shared disabled injector never fires


def test_context_fire_counts_health():
    ctx = ExecutionContext(faults=FaultInjector().plan("spill.write"))
    with pytest.raises(OSError):
        ctx.fire("spill.write")
    ctx.fire("spill.write")  # plan exhausted
    assert ctx.health.faults == 1


# ----------------------------------------------------------------------
# guarded builds and the fallback decision
# ----------------------------------------------------------------------
def test_guarded_builder_wraps_unexpected_errors():
    def bad():
        raise KeyError("lost")

    with pytest.raises(StructureBuildError) as info:
        guarded_builder("mst:test", bad)()
    assert info.value.kind == "mst:test"


def test_guarded_builder_lets_resilience_errors_through():
    def cancelled():
        raise QueryCancelledError("stop")

    with pytest.raises(QueryCancelledError):
        guarded_builder("mst:test", cancelled)()


def test_guarded_builder_enforces_structure_budget():
    import numpy as np
    from repro.mst.tree import MergeSortTree

    ctx = ExecutionContext(limits=ResourceLimits(max_structure_bytes=8))
    build = guarded_builder(
        "mst:test", lambda: MergeSortTree(np.arange(64), fanout=2))
    with activate(ctx):
        with pytest.raises(ResourceLimitError):
            build()


def test_fallback_call_maps_to_naive_once():
    from repro.window.calls import WindowCall

    call = WindowCall("count", ["x"], distinct=True, algorithm="mst")
    fallback = fallback_call(call)
    assert fallback.algorithm == "naive"
    assert fallback.function == call.function
    assert fallback.distinct == call.distinct
    assert fallback_call(fallback) is None  # no second fallback level


# ----------------------------------------------------------------------
# parallel fail-fast
# ----------------------------------------------------------------------
def test_parallel_failure_carries_slice_and_all_failures():
    def worker(lo, hi):
        if lo >= 20:
            raise ValueError(f"bad slice {lo}")
        return hi - lo

    slices = task_slices(40, 10)  # 4 slices, one per worker
    with pytest.raises(ParallelExecutionError) as info:
        _run_tasks(worker, slices, workers=4)
    err = info.value
    assert (err.lo, err.hi) in {(20, 30), (30, 40)}
    assert 1 <= len(err.failures) <= 2
    assert all(isinstance(f, ParallelExecutionError) for f in err.failures)


def test_parallel_cancels_pending_tasks_on_first_failure():
    started = []
    gate = threading.Event()

    def worker(lo, hi):
        started.append(lo)
        if lo == 0:
            raise RuntimeError("first task fails")
        gate.wait(0.2)
        return hi - lo

    # 1 worker, many slices: task 0 fails while the rest are queued, so
    # fail-fast must cancel them before they ever start.
    with pytest.raises(ParallelExecutionError):
        _run_tasks(worker, task_slices(100, 10), workers=1)
    # The serial path is taken for workers<=1; force the pool with 2.
    started.clear()
    with pytest.raises(ParallelExecutionError):
        _run_tasks(worker, task_slices(100, 10), workers=2)
    assert len(started) < 10  # pending tasks were cancelled, not run


def test_parallel_propagates_cancellation_unwrapped():
    token = CancellationToken()
    token.cancel()
    ctx = ExecutionContext(token=token)

    with activate(ctx):
        with pytest.raises(QueryCancelledError):
            _run_tasks(lambda lo, hi: hi - lo, task_slices(40, 10),
                       workers=4)


def test_parallel_workers_inherit_context_and_fire_fault_site():
    faults = FaultInjector().plan("parallel.worker", times=1)
    ctx = ExecutionContext(faults=faults)

    with activate(ctx):
        with pytest.raises(ParallelExecutionError) as info:
            _run_tasks(lambda lo, hi: hi - lo, task_slices(40, 10),
                       workers=4)
    assert isinstance(info.value.__cause__, RuntimeError)
    assert ctx.health.faults == 1


def test_parallel_success_keeps_order():
    out = _run_tasks(lambda lo, hi: (lo, hi), task_slices(45, 10), workers=3)
    assert out == task_slices(45, 10)


# ----------------------------------------------------------------------
# Session integration
# ----------------------------------------------------------------------
def test_session_timeout_raises_within_deadline():
    with Session(_catalog(), timeout=5.0, clock=ExpiringClock()) as session:
        with pytest.raises(QueryTimeoutError):
            session.execute(SQL)
        assert session.health_stats().timeouts == 1
        # The session (and its cache) survives the failed query.
        relaxed = Session(_catalog())
        try:
            expected = relaxed.execute(SQL)
        finally:
            relaxed.close()
        assert expected.num_rows == 150


def test_session_per_query_timeout_overrides_default():
    with Session(_catalog(), clock=ExpiringClock()) as session:
        session.execute(SQL)  # no default timeout: runs fine
        with pytest.raises(QueryTimeoutError):
            session.execute(SQL, timeout=3.0)


def test_session_cancellation_token():
    token = CancellationToken()
    token.cancel()
    with Session(_catalog()) as session:
        with pytest.raises(QueryCancelledError):
            session.execute(SQL, token=token)
        assert session.health_stats().cancellations == 1
        # A later query without the token completes.
        assert session.execute(SQL).num_rows == 150


def test_session_max_rows_limit():
    with Session(_catalog(), limits=ResourceLimits(max_rows=10)) as session:
        with pytest.raises(ResourceLimitError):
            session.execute(SQL)
        assert session.health_stats().limit_hits == 1
        # Per-query limits override the default.
        assert session.execute(
            SQL, limits=ResourceLimits()).num_rows == 150


def test_health_counters_merge_and_render():
    a = HealthCounters(timeouts=1, downgrades=["x -> naive"])
    b = HealthCounters(retries=2, downgrades=["x -> naive", "y -> naive"])
    a.merge(b)
    assert a.timeouts == 1 and a.retries == 2
    assert a.downgrades == ["x -> naive", "y -> naive"]  # dedup'd
    text = "\n".join(a.render())
    assert "timeouts=1" in text and "fallback: y -> naive" in text


def test_explain_has_no_resilience_section_when_healthy():
    with Session(_catalog()) as session:
        session.execute(SQL)
        assert "Resilience" not in session.explain(SQL)


def test_explain_reports_resilience_after_fallback():
    faults = FaultInjector().plan("structure.build", times=-1)
    with Session(_catalog(), faults=faults) as session:
        session.execute(SQL)
        text = session.explain(SQL)
        assert "Resilience" in text
        assert "fallbacks=" in text
        assert "-> naive" in text
