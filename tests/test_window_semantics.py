"""SQL-standard semantic laws of the window functions.

Beyond agreeing with the oracle, the functions must satisfy the
standard's intrinsic laws: rank bounds, NTILE's balanced buckets,
CUME_DIST monotonicity over peers, FIRST/LAST duality, LEAD/LAG
symmetry, and NULL-handling rules.
"""

import numpy as np
import pytest

from repro.table import DataType, Table
from repro.window import (
    FrameSpec,
    WindowCall,
    WindowSpec,
    current_row,
    preceding,
    unbounded_following,
    unbounded_preceding,
    window_query,
)
from repro.window.frame import OrderItem


def _table(n=80, seed=21, nulls=0.15):
    rng = np.random.default_rng(seed)
    xs = [int(v) if rng.random() > nulls else None
          for v in rng.integers(0, 10, n)]
    return Table.from_dict({
        "o": (DataType.INT64, [int(v) for v in rng.integers(0, 25, n)]),
        "x": (DataType.INT64, xs),
        "y": (DataType.FLOAT64, [float(v) for v in rng.integers(0, 7, n)]),
    })


FULL = WindowSpec(order_by=(OrderItem("o"),),
                  frame=FrameSpec.rows(unbounded_preceding(),
                                       unbounded_following()))
SLIDING = WindowSpec(order_by=(OrderItem("o"),),
                     frame=FrameSpec.rows(preceding(10), current_row()))


def run(call, spec=FULL, table=None):
    return window_query(table if table is not None else _table(),
                        [call], spec).columns[-1].to_list()


class TestRankLaws:
    def test_rank_bounds(self):
        table = _table()
        ranks = run(WindowCall("rank", order_by=(OrderItem("y"),)),
                    FULL, table)
        assert all(1 <= r <= table.num_rows for r in ranks)
        assert min(ranks) == 1

    def test_row_number_is_a_permutation(self):
        table = _table()
        rns = run(WindowCall("row_number", order_by=(OrderItem("y"),)),
                  FULL, table)
        assert sorted(rns) == list(range(1, table.num_rows + 1))

    def test_rank_leq_row_number(self):
        table = _table()
        ranks = run(WindowCall("rank", order_by=(OrderItem("y"),)),
                    FULL, table)
        rns = run(WindowCall("row_number", order_by=(OrderItem("y"),)),
                  FULL, table)
        assert all(r <= n for r, n in zip(ranks, rns))

    def test_dense_rank_leq_rank_and_contiguous(self):
        table = _table()
        dense = run(WindowCall("dense_rank", order_by=(OrderItem("y"),)),
                    FULL, table)
        ranks = run(WindowCall("rank", order_by=(OrderItem("y"),)),
                    FULL, table)
        assert all(d <= r for d, r in zip(dense, ranks))
        assert set(dense) == set(range(1, max(dense) + 1)), \
            "dense ranks leave no gaps"

    def test_percent_rank_and_cume_dist_ranges(self):
        table = _table()
        pr = run(WindowCall("percent_rank", order_by=(OrderItem("y"),)),
                 FULL, table)
        cd = run(WindowCall("cume_dist", order_by=(OrderItem("y"),)),
                 FULL, table)
        assert all(0.0 <= v <= 1.0 for v in pr)
        assert all(0.0 < v <= 1.0 for v in cd)
        assert max(cd) == pytest.approx(1.0)

    def test_equal_keys_share_rank_and_cume_dist(self):
        table = Table.from_dict({
            "o": (DataType.INT64, [1, 2, 3, 4]),
            "y": (DataType.FLOAT64, [5.0, 5.0, 5.0, 9.0]),
        })
        ranks = run(WindowCall("rank", order_by=(OrderItem("y"),)),
                    FULL, table)
        cd = run(WindowCall("cume_dist", order_by=(OrderItem("y"),)),
                 FULL, table)
        assert ranks == [1, 1, 1, 4]
        assert cd[:3] == [0.75, 0.75, 0.75]

    def test_ntile_balanced(self):
        table = _table(n=50)
        for buckets in (2, 3, 7, 50, 60):
            tiles = run(WindowCall("ntile", buckets=buckets,
                                   order_by=(OrderItem("y"),)),
                        FULL, table)
            counts = {}
            for t in tiles:
                counts[t] = counts.get(t, 0) + 1
            sizes = sorted(counts.values())
            assert sizes[-1] - sizes[0] <= 1, \
                f"NTILE({buckets}) buckets must differ by at most 1"
            assert min(counts) == 1
            assert max(counts) <= buckets


class TestValueFunctionLaws:
    def test_first_value_is_the_minimum(self):
        """FIRST_VALUE of y ordered by y equals MIN(y) — the duality law
        that holds even with ties (full FIRST/LAST duality would need a
        strict order)."""
        table = _table(nulls=0.0)
        firsts = run(WindowCall("first_value", ("y",),
                                order_by=(OrderItem("y"),)), SLIDING, table)
        mins = run(WindowCall("min", ("y",)), SLIDING, table)
        assert firsts == mins

    def test_nth_value_1_is_first_value(self):
        table = _table(nulls=0.0)
        nth1 = run(WindowCall("nth_value", ("x",), nth=1,
                              order_by=(OrderItem("y"),)), SLIDING, table)
        first = run(WindowCall("first_value", ("x",),
                               order_by=(OrderItem("y"),)), SLIDING, table)
        assert nth1 == first

    def test_nth_from_last_1_is_last_value(self):
        table = _table(nulls=0.0)
        nth = run(WindowCall("nth_value", ("x",), nth=1, from_last=True,
                             order_by=(OrderItem("y"),)), SLIDING, table)
        last = run(WindowCall("last_value", ("x",),
                              order_by=(OrderItem("y"),)), SLIDING, table)
        assert nth == last

    def test_respect_nulls_can_return_null(self):
        table = Table.from_dict({
            "o": (DataType.INT64, [1, 2]),
            "x": (DataType.INT64, [None, 5]),
        })
        spec = WindowSpec(order_by=(OrderItem("o"),),
                          frame=FrameSpec.rows(unbounded_preceding(),
                                               unbounded_following()))
        respect = run(WindowCall("first_value", ("x",)), spec, table)
        ignore = run(WindowCall("first_value", ("x",),
                                ignore_nulls=True), spec, table)
        assert respect == [None, None]
        assert ignore == [5, 5]

    def test_out_of_range_nth_is_null(self):
        table = _table(n=5, nulls=0.0)
        nth = run(WindowCall("nth_value", ("x",), nth=99), FULL, table)
        assert nth == [None] * 5


class TestNavigationLaws:
    def test_lead_shifts_sorted_sequence(self):
        table = _table(nulls=0.0)
        ys = table.column("y").to_list()
        os_ = table.column("o").to_list()
        # function-order ties break by partition position (the window
        # ORDER BY o), not by original row index
        partition_pos = {row: p for p, row in enumerate(
            sorted(range(len(ys)), key=lambda i: (os_[i], i)))}
        order = sorted(range(len(ys)),
                       key=lambda i: (ys[i], partition_pos[i]))
        lead1 = run(WindowCall("lead", ("y",),
                               order_by=(OrderItem("y"),)), FULL, table)
        for position, row in enumerate(order[:-1]):
            assert lead1[row] == ys[order[position + 1]]
        assert lead1[order[-1]] is None

    def test_lead_offset_zero_is_identity(self):
        table = _table(nulls=0.0)
        zero = run(WindowCall("lead", ("y",), offset=0,
                              order_by=(OrderItem("y"),)), FULL, table)
        assert zero == table.column("y").to_list()

    def test_default_fills_out_of_frame(self):
        table = _table(n=6, nulls=0.0)
        lag = run(WindowCall("lag", ("y",), offset=99, default=-1.0),
                  FULL, table)
        assert lag == [-1.0] * 6


class TestAggregateLaws:
    def test_count_distinct_at_most_count(self):
        table = _table()
        distinct = run(WindowCall("count", ("x",), distinct=True),
                       SLIDING, table)
        plain = run(WindowCall("count", ("x",)), SLIDING, table)
        assert all(d <= c for d, c in zip(distinct, plain))

    def test_sum_distinct_at_most_sum_for_positive(self):
        table = _table(nulls=0.0)
        sd = run(WindowCall("sum", ("x",), distinct=True), SLIDING, table)
        s = run(WindowCall("sum", ("x",)), SLIDING, table)
        assert all(a <= b for a, b in zip(sd, s))

    def test_median_between_min_and_max(self):
        table = _table(nulls=0.0)
        med = run(WindowCall("median", ("y",)), SLIDING, table)
        lo = run(WindowCall("min", ("y",)), SLIDING, table)
        hi = run(WindowCall("max", ("y",)), SLIDING, table)
        assert all(a <= m <= b for a, m, b in zip(lo, med, hi))

    def test_percentile_monotone_in_fraction(self):
        table = _table(nulls=0.0)
        previous = None
        for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
            current = run(WindowCall("percentile_disc", ("y",),
                                     fraction=fraction), SLIDING, table)
            if previous is not None:
                assert all(a <= b for a, b in zip(previous, current))
            previous = current

    def test_mode_is_a_frame_member(self):
        table = _table(nulls=0.0)
        modes = run(WindowCall("mode", ("x",)), SLIDING, table)
        counts = run(WindowCall("count_star"), SLIDING, table)
        xs = table.column("x").to_list()
        o = table.column("o").to_list()
        order = sorted(range(len(xs)), key=lambda i: (o[i], i))
        for position, row in enumerate(order):
            frame_rows = order[max(position - 10, 0):position + 1]
            assert modes[row] in {xs[j] for j in frame_rows}
        del counts
