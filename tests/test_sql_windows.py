"""SQL window functions end to end, incl. the paper's example queries."""

import datetime

import pytest

from conftest import assert_columns_equal
from repro.errors import SqlAnalysisError
from repro.sql import Catalog, execute
from repro.table import DataType, Table
from repro.tpch import lineitem, tpcc_results
from repro.window import (
    FrameSpec,
    WindowCall,
    WindowSpec,
    current_row,
    preceding,
    window_query,
)
from repro.window.frame import OrderItem


@pytest.fixture
def catalog():
    table = Table.from_dict({
        "g": (DataType.STRING, ["a", "a", "b", "b", "a", "b"]),
        "o": (DataType.INT64, [1, 2, 1, 2, 3, 3]),
        "v": (DataType.INT64, [10, 20, 30, 40, 50, None]),
    })
    return Catalog({"t": table})


class TestBasicWindows:
    def test_running_sum(self, catalog):
        out = execute("""
            select o, sum(v) over (order by o, v
              rows between unbounded preceding and current row) s
            from t order by o, v
        """, catalog)
        assert out.column("s").to_list() == [10, 40, 60, 100, 150, 150]

    def test_partitioned(self, catalog):
        out = execute("""
            select g, o, row_number() over (partition by g order by o) rn
            from t order by g, o
        """, catalog)
        assert out.column("rn").to_list() == [1, 2, 3, 1, 2, 3]

    def test_default_frame_is_running(self, catalog):
        """Without an explicit frame, ORDER BY implies RANGE UNBOUNDED
        PRECEDING .. CURRENT ROW, with peers included."""
        out = execute("select count(*) over (order by g) c from t "
                      "order by g", catalog)
        assert out.column("c").to_list() == [3, 3, 3, 6, 6, 6]

    def test_no_order_is_whole_partition(self, catalog):
        out = execute("select sum(v) over () s from t limit 1", catalog)
        assert out.row(0) == (150,)

    def test_named_window_shared(self, catalog):
        out = execute("""
            select sum(v) over w s, count(*) over w c from t
            window w as (order by o rows between 1 preceding
                         and current row)
            order by o, v limit 2
        """, catalog)
        assert out.num_rows == 2
        assert out.schema.names() == ["s", "c"]

    def test_window_in_order_by(self, catalog):
        out = execute("""
            select v from t where v is not null
            order by rank() over (order by v desc)
        """, catalog)
        assert out.column("v").to_list() == [50, 40, 30, 20, 10]

    def test_unknown_named_window(self, catalog):
        with pytest.raises(SqlAnalysisError):
            execute("select sum(v) over nope from t", catalog)

    def test_window_with_group_by_rejected(self, catalog):
        with pytest.raises(SqlAnalysisError):
            execute("select g, sum(count(*)) over () from t group by g",
                    catalog)


class TestProposedExtensions:
    def test_framed_distinct_count(self, catalog):
        out = execute("""
            select count(distinct g) over (order by o, v rows between
              2 preceding and current row) c
            from t order by o, v
        """, catalog)
        assert out.column("c").to_list() == [1, 2, 2, 2, 2, 2]

    def test_framed_percentile_with_order(self, catalog):
        out = execute("""
            select percentile_disc(0.5, order by v) over (
              order by o, v rows between 1 preceding and current row) m
            from t order by o, v
        """, catalog)
        assert out.column("m").to_list() == [10, 10, 20, 20, 40, 50]

    def test_window_filter_clause(self, catalog):
        out = execute("""
            select sum(v) filter (where g = 'a') over (order by o, v
              rows between unbounded preceding and current row) s
            from t order by o, v
        """, catalog)
        assert out.column("s").to_list() == [10, 10, 30, 30, 80, 80]

    def test_exclude_current_row(self, catalog):
        out = execute("""
            select sum(v) over (order by o, v rows between unbounded
              preceding and unbounded following exclude current row) s
            from t order by o, v
        """, catalog)
        assert out.column("s").to_list() == [140, 120, 130, 110, 100, 150]

    def test_lead_with_function_order(self, catalog):
        out = execute("""
            select v, lead(v order by v desc) over (order by o, v
              rows between unbounded preceding and unbounded following) nxt
            from t where v is not null order by v desc
        """, catalog)
        assert out.column("nxt").to_list() == [40, 30, 20, 10, None]

    def test_expression_frame_bounds(self):
        table = Table.from_dict({
            "o": (DataType.INT64, [1, 2, 3, 4]),
            "w": (DataType.INT64, [0, 1, 2, 3]),
            "v": (DataType.INT64, [1, 1, 1, 1]),
        })
        out = execute("""
            select count(*) over (order by o rows between w preceding
              and current row) c
            from t order by o
        """, Catalog({"t": table}))
        assert out.column("c").to_list() == [1, 2, 3, 4]


class TestAgainstOperatorApi:
    """SQL results must match direct window-operator invocations."""

    def test_median_matches(self):
        table = lineitem(800)
        catalog = Catalog({"lineitem": table})
        sql = execute("""
            select percentile_disc(0.5, order by l_extendedprice) over (
              order by l_shipdate rows between 49 preceding
              and current row) m
            from lineitem
        """, catalog).column("m").to_list()
        spec = WindowSpec(order_by=(OrderItem("l_shipdate"),),
                          frame=FrameSpec.rows(preceding(49),
                                               current_row()))
        call = WindowCall("percentile_disc", ("l_extendedprice",),
                          fraction=0.5, output="m")
        api = window_query(table, [call],
                           spec).column("m").to_list()
        assert_columns_equal(sql, api)

    def test_paper_tpcc_query_properties(self):
        catalog = Catalog({"tpcc_results": tpcc_results(80)})
        out = execute("""
          select dbsystem, tps,
            count(distinct dbsystem) over w as systems,
            rank(order by tps desc) over w as rnk,
            first_value(tps order by tps desc) over w as best
          from tpcc_results
          window w as (order by submission_date
            range between unbounded preceding and current row)
          order by submission_date
        """, catalog)
        systems = out.column("systems").to_list()
        ranks = out.column("rnk").to_list()
        best = out.column("best").to_list()
        tps = out.column("tps").to_list()
        assert systems == sorted(systems), \
            "competitor count never decreases over time"
        assert ranks[0] == 1
        assert all(b >= t for b, t in zip(best, tps))
        running_max = -1.0
        for b, t in zip(best, tps):
            running_max = max(running_max, t)
            assert b == pytest.approx(running_max)

    def test_date_range_interval_frame(self):
        table = Table.from_dict({
            "d": (DataType.DATE, [datetime.date(2020, 1, 1),
                                  datetime.date(2020, 1, 5),
                                  datetime.date(2020, 1, 20),
                                  datetime.date(2020, 2, 1)]),
            "u": (DataType.INT64, [1, 1, 2, 3]),
        })
        out = execute("""
            select count(distinct u) over (order by d range between
              interval '2 weeks' preceding and current row) c
            from t order by d
        """, Catalog({"t": table}))
        assert out.column("c").to_list() == [1, 1, 1, 2]


class TestRangeEdgeCases:
    def test_desc_range_frame(self):
        t = Table.from_dict({
            "o": (DataType.INT64, [5, 3, 1, 10]),
            "v": (DataType.INT64, [1, 2, 3, 4]),
        })
        out = execute("""
          select o, count(*) over (order by o desc
            range between 2 preceding and current row) c
          from t order by o desc
        """, Catalog({"t": t}))
        # DESC order 10,5,3,1: RANGE 2 PRECEDING covers values [o, o+2]
        assert out.column("c").to_list() == [1, 1, 2, 2]

    def test_multi_key_range_offsets_rejected(self):
        from repro.errors import FrameError
        t = Table.from_dict({
            "o": (DataType.INT64, [1, 2]),
            "v": (DataType.INT64, [3, 4]),
        })
        with pytest.raises(FrameError):
            execute("select count(*) over (order by o, v range between "
                    "1 preceding and current row) from t",
                    Catalog({"t": t}))

    def test_range_with_null_order_keys(self):
        t = Table.from_dict({
            "o": (DataType.INT64, [1, None, 2, None]),
            "v": (DataType.INT64, [1, 1, 1, 1]),
        })
        out = execute("""
          select count(*) over (order by o
            range between 1 preceding and current row) c
          from t order by o nulls last
        """, Catalog({"t": t}))
        # NULL keys are their own peer group at the end
        assert out.column("c").to_list() == [1, 2, 2, 2]
