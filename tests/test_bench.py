"""Benchmark harness utilities and the Figure 14 profiler."""

import numpy as np

from repro.bench.harness import (
    BenchSeries,
    bench_scale,
    format_table,
    measure,
    scaled,
)
from repro.bench.profiling import distinct_count_phases
from repro.tpch import lineitem_arrays


class TestHarness:
    def test_scaled_respects_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert bench_scale() == 0.5
        assert scaled(1000) == 500
        monkeypatch.setenv("REPRO_BENCH_SCALE", "broken")
        assert bench_scale() == 1.0

    def test_scaled_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.0001")
        assert scaled(1000, minimum=50) == 50

    def test_measure_returns_positive(self):
        seconds = measure(lambda: sum(range(1000)), repeats=2)
        assert seconds > 0

    def test_series_rendering(self):
        series = BenchSeries("Demo", ["name", "value"])
        series.add("a", 1.5)
        series.add("b", 1e-9)
        series.note("a note")
        text = str(series)
        assert "Demo" in text and "a note" in text and "name" in text
        assert series.as_dicts()[0] == {"name": "a", "value": 1.5}

    def test_format_table_alignment(self):
        text = format_table(["col"], [["longer_value"], [1.23456]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1


class TestProfiler:
    def test_phases_cover_pipeline(self):
        arrays = lineitem_arrays(5_000)
        phases = distinct_count_phases(arrays["l_shipdate"],
                                       arrays["l_partkey"], 500)
        labels = [label for label, _ in phases]
        assert labels == ["sort window order", "materialize partition",
                          "populate array", "sort array",
                          "compute prevIdcs", "build tree layers",
                          "compute results"]
        assert all(seconds >= 0 for _, seconds in phases)

    def test_profiler_result_correct(self):
        """The profiled pipeline must produce correct distinct counts."""
        rng = np.random.default_rng(3)
        n = 400
        order_keys = np.arange(n)
        values = rng.integers(0, 9, size=n)
        # capture the counts by re-running the probe manually
        from repro.mst.build import build_levels_numpy
        from repro.mst.vectorized import batched_count
        from repro.preprocess import previous_occurrence
        prev = previous_occurrence(values)
        levels = build_levels_numpy(prev + 1, fanout=2, cascading=False)
        i = np.arange(n)
        lo = np.maximum(i - 50, 0)
        counts = batched_count(levels, lo, i + 1, key_hi=lo + 1)
        for row in range(0, n, 37):
            window = values[max(row - 50, 0):row + 1]
            assert counts[row] == len(set(window.tolist()))
        # and the profiler itself runs on the same input without error
        phases = distinct_count_phases(order_keys, values, 50)
        assert len(phases) == 7
