"""Error hierarchy contracts."""


from repro.errors import (
    ExecutionError,
    FrameError,
    ReproError,
    SchemaError,
    SqlAnalysisError,
    SqlError,
    SqlSyntaxError,
    TypeMismatchError,
    WindowFunctionError,
)


def test_everything_derives_from_repro_error():
    for cls in (SchemaError, TypeMismatchError, FrameError,
                WindowFunctionError, SqlError, SqlSyntaxError,
                SqlAnalysisError, ExecutionError):
        assert issubclass(cls, ReproError)


def test_sql_hierarchy():
    assert issubclass(SqlSyntaxError, SqlError)
    assert issubclass(SqlAnalysisError, SqlError)
    assert issubclass(TypeMismatchError, SchemaError)


def test_syntax_error_carries_position():
    error = SqlSyntaxError("bad", position=17)
    assert error.position == 17
    assert SqlSyntaxError("bad").position == -1


def test_catchable_with_single_clause():
    from repro.sql import Catalog, execute
    try:
        execute("select * from missing", Catalog())
    except ReproError:
        pass
    else:  # pragma: no cover
        raise AssertionError("expected a ReproError")


def test_every_error_class_has_a_stable_code():
    """Each exception type carries a machine-readable ``code`` the
    serving tier maps to wire errors; codes are per-class constants."""
    import inspect

    import repro.errors as errors_mod

    seen = {}
    for _, cls in inspect.getmembers(errors_mod, inspect.isclass):
        if issubclass(cls, ReproError):
            code = cls.code
            assert isinstance(code, str) and code, cls
            assert code == code.upper(), cls
            seen.setdefault(code, []).append(cls.__name__)
    # Codes identify a condition, not a class position: subclasses may
    # share only when one refines the other (none do today except via
    # inheritance defaults, which the upper bound below catches).
    duplicates = {c: n for c, n in seen.items() if len(n) > 1}
    assert not duplicates, duplicates


def test_codes_cover_the_serving_status_map():
    from repro.errors import (
        CircuitOpenError,
        ConfigurationError,
        QueryCancelledError,
        QueryRejectedError,
        QueryTimeoutError,
        ResourceLimitError,
        TenantQuotaError,
        TenantRateLimitError,
    )

    assert QueryRejectedError.code == "QUERY_REJECTED"
    assert CircuitOpenError.code == "CIRCUIT_OPEN"
    assert QueryTimeoutError.code == "QUERY_TIMEOUT"
    assert QueryCancelledError.code == "QUERY_CANCELLED"
    assert ResourceLimitError.code == "RESOURCE_LIMIT"
    assert ConfigurationError.code == "INVALID_CONFIG"
    assert TenantRateLimitError.code == "TENANT_RATE_LIMITED"
    assert TenantQuotaError.code == "TENANT_QUOTA_EXCEEDED"
    assert ReproError.code == "INTERNAL"


def test_tenant_errors_are_rejections():
    """429-family errors subclass QueryRejectedError so existing
    ``except QueryRejectedError`` retry loops keep working."""
    from repro.errors import (
        QueryRejectedError,
        TenantQuotaError,
        TenantRateLimitError,
    )

    exc = TenantRateLimitError("slow down", tenant="t",
                               retry_after=2.5, priority="batch")
    assert isinstance(exc, QueryRejectedError)
    assert (exc.tenant, exc.retry_after, exc.priority) == \
        ("t", 2.5, "batch")
    quota = TenantQuotaError("too many", tenant="t")
    assert isinstance(quota, QueryRejectedError)
    assert quota.tenant == "t"


def test_instances_inherit_class_codes():
    assert SqlSyntaxError("x", position=0).code == "SQL_SYNTAX"
    assert ExecutionError("x").code == "EXECUTION"
