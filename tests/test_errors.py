"""Error hierarchy contracts."""


from repro.errors import (
    ExecutionError,
    FrameError,
    ReproError,
    SchemaError,
    SqlAnalysisError,
    SqlError,
    SqlSyntaxError,
    TypeMismatchError,
    WindowFunctionError,
)


def test_everything_derives_from_repro_error():
    for cls in (SchemaError, TypeMismatchError, FrameError,
                WindowFunctionError, SqlError, SqlSyntaxError,
                SqlAnalysisError, ExecutionError):
        assert issubclass(cls, ReproError)


def test_sql_hierarchy():
    assert issubclass(SqlSyntaxError, SqlError)
    assert issubclass(SqlAnalysisError, SqlError)
    assert issubclass(TypeMismatchError, SchemaError)


def test_syntax_error_carries_position():
    error = SqlSyntaxError("bad", position=17)
    assert error.position == 17
    assert SqlSyntaxError("bad").position == -1


def test_catchable_with_single_clause():
    from repro.sql import Catalog, execute
    try:
        execute("select * from missing", Catalog())
    except ReproError:
        pass
    else:  # pragma: no cover
        raise AssertionError("expected a ReproError")
