"""Spooling merge sort trees to disk."""

import numpy as np
import pytest

from repro.mst import MAX, MIN, SUM, AVG, MergeSortTree
from repro.mst.persist import load_tree, save_tree
from repro.mst.vectorized import batched_aggregate, batched_count


def test_roundtrip_count_queries(tmp_path, rng):
    n = 300
    keys = rng.integers(-1, n, size=n)
    tree = MergeSortTree(keys, fanout=4, sample_every=8)
    path = tmp_path / "tree.npz"
    save_tree(tree, path)
    loaded = load_tree(path)
    assert loaded.fanout == 4
    assert loaded.sample_every == 8
    assert loaded.cascading
    for _ in range(50):
        lo, hi = sorted(rng.integers(0, n + 1, size=2))
        t = int(rng.integers(-2, n + 2))
        assert loaded.count_below(lo, hi, t) == tree.count_below(lo, hi, t)


def test_roundtrip_select(tmp_path, rng):
    n = 120
    perm = rng.permutation(n)
    tree = MergeSortTree(perm, fanout=2)
    path = tmp_path / "perm.npz"
    save_tree(tree, path)
    loaded = load_tree(path)
    for _ in range(30):
        a, b = sorted(rng.integers(0, n + 1, size=2))
        if a == b:
            continue
        k = int(rng.integers(0, b - a))
        assert loaded.select(k, [(int(a), int(b))]) == \
            tree.select(k, [(int(a), int(b))])


def test_roundtrip_numpy_aggregate(tmp_path, rng):
    n = 100
    keys = rng.integers(0, n, size=n)
    payload = rng.normal(size=n)
    tree = MergeSortTree(keys, fanout=2, aggregate=SUM, payload=payload)
    path = tmp_path / "agg.npz"
    save_tree(tree, path)
    loaded = load_tree(path)
    loaded.aggregate_spec = SUM
    for lo, hi, t in [(0, n, n), (10, 60, 30), (5, 5, 1)]:
        assert loaded.aggregate([(lo, hi)], t) == \
            tree.aggregate([(lo, hi)], t)


@pytest.mark.parametrize("spec", [SUM, MIN, MAX], ids=["sum", "min", "max"])
@pytest.mark.parametrize("fanout,sample_every", [(2, 1), (4, 8)])
def test_roundtrip_prefix_aggregates_exact(tmp_path, rng, spec, fanout,
                                           sample_every):
    """Per-position prefix-aggregate annotations survive the round-trip
    bit-for-bit, across fanouts and sampling rates (the cache's spill
    path depends on exactly this)."""
    n = 257  # deliberately not a power of the fanout
    keys = rng.integers(-1, n, size=n)
    payload = rng.normal(size=n)
    tree = MergeSortTree(keys, fanout=fanout, sample_every=sample_every,
                         aggregate=spec, payload=payload)
    path = tmp_path / f"{spec.name}.npz"
    save_tree(tree, path)
    loaded = load_tree(path)
    assert loaded.aggregate_spec is None  # caller re-attaches
    loaded.aggregate_spec = spec
    assert len(loaded.levels.agg_prefix) == len(tree.levels.agg_prefix)
    for ours, theirs in zip(loaded.levels.agg_prefix,
                            tree.levels.agg_prefix):
        np.testing.assert_array_equal(ours, theirs)
    for _ in range(40):
        lo, hi = sorted(rng.integers(0, n + 1, size=2))
        t = int(rng.integers(-2, n + 2))
        assert loaded.aggregate([(int(lo), int(hi))], t) == \
            tree.aggregate([(int(lo), int(hi))], t)


def test_roundtrip_prefix_aggregates_batched(tmp_path, rng):
    """The vectorised probe kernels read reloaded annotations too."""
    n = 400
    keys = rng.integers(0, 50, size=n)
    payload = rng.normal(size=n)
    tree = MergeSortTree(keys, fanout=2, aggregate=SUM, payload=payload)
    path = tmp_path / "batched.npz"
    save_tree(tree, path)
    loaded = load_tree(path)
    loaded.aggregate_spec = SUM
    lo = rng.integers(0, n // 2, size=64)
    hi = lo + rng.integers(0, n // 2, size=64)
    key_hi = rng.integers(0, 50, size=64)
    np.testing.assert_allclose(
        batched_aggregate(loaded.levels, lo, hi, key_hi, kind="sum"),
        batched_aggregate(tree.levels, lo, hi, key_hi, kind="sum"))
    np.testing.assert_array_equal(
        batched_count(loaded.levels, lo, hi, key_hi),
        batched_count(tree.levels, lo, hi, key_hi))


def test_roundtrip_prefix_aggregates_tiny(tmp_path):
    """Degenerate shapes: single element and two equal keys."""
    for keys, payload in ([0], [1.5]), ([3, 3], [2.0, 4.0]):
        tree = MergeSortTree(np.asarray(keys), fanout=2, aggregate=SUM,
                             payload=np.asarray(payload))
        path = tmp_path / f"tiny_{len(keys)}.npz"
        save_tree(tree, path)
        loaded = load_tree(path)
        loaded.aggregate_spec = SUM
        n = len(keys)
        assert loaded.aggregate([(0, n)], 10) == tree.aggregate([(0, n)], 10)


def test_generic_annotations_rejected(tmp_path, rng):
    keys = rng.integers(0, 10, size=20)
    tree = MergeSortTree(keys, aggregate=AVG,
                         payload=[float(i) for i in range(20)])
    with pytest.raises(ValueError):
        save_tree(tree, tmp_path / "nope.npz")


def test_no_cascading_roundtrip(tmp_path, rng):
    keys = rng.integers(0, 40, size=64)
    tree = MergeSortTree(keys, fanout=2, cascading=False)
    path = tmp_path / "plain.npz"
    save_tree(tree, path)
    loaded = load_tree(path)
    assert not loaded.cascading
    assert all(b is None for b in loaded.levels.bridges)
    assert loaded.count_below(3, 50, 20) == tree.count_below(3, 50, 20)


def test_version_check(tmp_path, rng):
    tree = MergeSortTree(rng.integers(0, 5, size=10))
    path = tmp_path / "v.npz"
    save_tree(tree, path)
    # corrupt the version header
    with np.load(path) as bundle:
        arrays = {k: bundle[k] for k in bundle.files}
    arrays["__meta__"] = arrays["__meta__"].copy()
    arrays["__meta__"][0] = 99
    np.savez_compressed(path, **arrays)
    with pytest.raises(ValueError):
        load_tree(path)
