"""QueryResult: transparent table delegation plus execution record."""

import pytest

from repro.sql import Catalog, QueryResult, Session, SessionConfig, execute
from repro.table import DataType, Table

SQL = ("SELECT g, sum(v) OVER (PARTITION BY g ORDER BY v "
       "ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) AS s FROM t")


def _catalog():
    table = Table.from_dict({
        "g": (DataType.INT64, [1, 1, 2, 2, 2]),
        "v": (DataType.INT64, [5, 3, 8, 1, 4]),
    })
    return Catalog({"t": table})


@pytest.fixture
def session():
    with Session(_catalog(), config=SessionConfig()) as session:
        yield session


class TestDelegation:
    def test_execute_returns_a_query_result(self, session):
        result = session.execute(SQL)
        assert isinstance(result, QueryResult)

    def test_length_iteration_and_columns(self, session):
        result = session.execute(SQL)
        assert len(result) == 5
        assert result.num_rows == 5
        assert len(list(result.rows())) == 5
        assert result.column("s").to_list() == [8, 3, 12, 1, 5]
        assert result["s"].to_list() == [8, 3, 12, 1, 5]
        assert [f.name for f in result.schema.fields] == ["g", "s"]

    def test_equality_with_a_plain_table(self, session):
        result = session.execute(SQL)
        table = execute(SQL, _catalog())
        # Both directions: QueryResult.__eq__ and Table's reflected side.
        assert result == table
        assert table == result
        assert result == session.execute(SQL)
        assert (result != table) is False


class TestStats:
    def test_stats_record_the_execution(self, session):
        result = session.execute(SQL)
        stats = result.stats
        assert stats.outcome == "ok"
        assert stats.priority == "interactive"
        assert stats.elapsed_seconds >= 0.0
        assert stats.structure_builds >= 1
        assert stats.cache_misses >= 1
        assert stats.strategies  # one window group was scheduled
        assert stats.parallel_strategy in (
            "serial", "inter-partition", "intra-partition")

    def test_cache_reuse_shows_up_on_the_second_run(self, session):
        session.execute(SQL)
        warm = session.execute(SQL)
        assert warm.stats.structure_reuses >= 1
        assert warm.stats.structure_builds == 0

    def test_stats_render_and_to_dict(self, session):
        stats = session.execute(SQL).stats
        text = stats.render()
        assert "outcome=ok" in text
        assert "structures:" in text
        payload = stats.to_dict()
        assert payload["outcome"] == "ok"
        assert isinstance(payload["health"], list)


class TestTrace:
    def test_untraced_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        with Session(_catalog()) as session:
            result = session.execute(SQL)
        assert result.trace is None
        assert result.render_trace() == ""
        assert result.trace_dict() is None

    def test_env_flag_enables_session_tracing(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        with Session(_catalog()) as session:
            assert session.execute(SQL).trace is not None

    def test_per_query_trace_override(self, session):
        result = session.execute(SQL, trace=True)
        assert result.trace is not None
        names = {span.name for span in result.trace.walk()}
        assert {"query", "parse", "gateway.wait", "plan", "partition",
                "window.group", "probe"} <= names
        assert "probe" in result.render_trace()
        assert result.trace_dict()["name"] == "query"

    def test_session_wide_tracing(self):
        config = SessionConfig(trace=True)
        with Session(_catalog(), config=config) as session:
            assert session.execute(SQL).trace is not None
            # ... and the per-query override still wins.
            assert session.execute(SQL, trace=False).trace is None

    def test_result_explain_is_annotated_when_traced(self, session):
        result = session.execute(SQL, trace=True)
        text = result.explain()
        assert "Execution (actual)" in text
        assert "(actual: rows=5" in text

    def test_result_explain_without_trace_still_renders(self, session):
        text = session.execute(SQL).explain()
        assert "Project" in text
        assert "Execution (actual)" in text  # stats are always recorded

    def test_bare_result_has_no_explainer(self, session):
        from repro.sql.result import QueryResult as QR
        result = QR(session.execute(SQL).table,
                    session.execute(SQL).stats)
        assert "no plan captured" in result.explain()


class TestModuleExecuteCompatibility:
    def test_module_execute_still_returns_a_table(self):
        out = execute(SQL, _catalog())
        assert isinstance(out, Table)
