"""QueryResult: transparent table delegation plus execution record."""

import pytest

from repro.sql import Catalog, QueryResult, Session, SessionConfig, execute
from repro.table import DataType, Table

SQL = ("SELECT g, sum(v) OVER (PARTITION BY g ORDER BY v "
       "ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) AS s FROM t")


def _catalog():
    table = Table.from_dict({
        "g": (DataType.INT64, [1, 1, 2, 2, 2]),
        "v": (DataType.INT64, [5, 3, 8, 1, 4]),
    })
    return Catalog({"t": table})


@pytest.fixture
def session():
    with Session(_catalog(), config=SessionConfig()) as session:
        yield session


class TestDelegation:
    def test_execute_returns_a_query_result(self, session):
        result = session.execute(SQL)
        assert isinstance(result, QueryResult)

    def test_length_iteration_and_columns(self, session):
        result = session.execute(SQL)
        assert len(result) == 5
        assert result.num_rows == 5
        assert len(list(result.rows())) == 5
        assert result.column("s").to_list() == [8, 3, 12, 1, 5]
        assert result["s"].to_list() == [8, 3, 12, 1, 5]
        assert [f.name for f in result.schema.fields] == ["g", "s"]

    def test_equality_with_a_plain_table(self, session):
        result = session.execute(SQL)
        table = execute(SQL, _catalog())
        # Both directions: QueryResult.__eq__ and Table's reflected side.
        assert result == table
        assert table == result
        assert result == session.execute(SQL)
        assert (result != table) is False


class TestStats:
    def test_stats_record_the_execution(self, session):
        result = session.execute(SQL)
        stats = result.stats
        assert stats.outcome == "ok"
        assert stats.priority == "interactive"
        assert stats.elapsed_seconds >= 0.0
        assert stats.structure_builds >= 1
        assert stats.cache_misses >= 1
        assert stats.strategies  # one window group was scheduled
        assert stats.parallel_strategy in (
            "serial", "inter-partition", "intra-partition")

    def test_cache_reuse_shows_up_on_the_second_run(self, session):
        session.execute(SQL)
        warm = session.execute(SQL)
        assert warm.stats.structure_reuses >= 1
        assert warm.stats.structure_builds == 0

    def test_stats_render_and_to_dict(self, session):
        stats = session.execute(SQL).stats
        text = stats.render()
        assert "outcome=ok" in text
        assert "structures:" in text
        payload = stats.to_dict()
        assert payload["outcome"] == "ok"
        assert isinstance(payload["health"], list)


class TestTrace:
    def test_untraced_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        with Session(_catalog()) as session:
            result = session.execute(SQL)
        assert result.trace is None
        assert result.render_trace() == ""
        assert result.trace_dict() is None

    def test_env_flag_enables_session_tracing(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        with Session(_catalog()) as session:
            assert session.execute(SQL).trace is not None

    def test_per_query_trace_override(self, session):
        result = session.execute(SQL, trace=True)
        assert result.trace is not None
        names = {span.name for span in result.trace.walk()}
        assert {"query", "parse", "gateway.wait", "plan", "partition",
                "window.group", "probe"} <= names
        assert "probe" in result.render_trace()
        assert result.trace_dict()["name"] == "query"

    def test_session_wide_tracing(self):
        config = SessionConfig(trace=True)
        with Session(_catalog(), config=config) as session:
            assert session.execute(SQL).trace is not None
            # ... and the per-query override still wins.
            assert session.execute(SQL, trace=False).trace is None

    def test_result_explain_is_annotated_when_traced(self, session):
        result = session.execute(SQL, trace=True)
        text = result.explain()
        assert "Execution (actual)" in text
        assert "(actual: rows=5" in text

    def test_result_explain_without_trace_still_renders(self, session):
        text = session.execute(SQL).explain()
        assert "Project" in text
        assert "Execution (actual)" in text  # stats are always recorded

    def test_bare_result_has_no_explainer(self, session):
        from repro.sql.result import QueryResult as QR
        result = QR(session.execute(SQL).table,
                    session.execute(SQL).stats)
        assert "no plan captured" in result.explain()


class TestModuleExecuteCompatibility:
    def test_module_execute_still_returns_a_table(self):
        out = execute(SQL, _catalog())
        assert isinstance(out, Table)


class TestWireSerialization:
    """QueryResult.to_dict() must survive a strict JSON round-trip."""

    def _wire_catalog(self):
        import datetime
        table = Table.from_dict({
            "g": (DataType.INT64, [1, 1, 2]),
            "f": (DataType.FLOAT64, [1.5, float("nan"), 2.25]),
            "s": (DataType.STRING, ["a", None, "c"]),
            "d": (DataType.DATE, [datetime.date(2024, 6, 1), None,
                                  datetime.date(2024, 6, 3)]),
            "b": (DataType.BOOL, [True, False, None]),
        })
        return Catalog({"w": table})

    def test_round_trip_is_lossless(self):
        import json
        with Session(self._wire_catalog()) as session:
            result = session.execute("SELECT g, f, s, d, b FROM w")
        payload = result.to_dict()
        # allow_nan=False: the encoder itself proves nothing non-JSON
        # (numpy scalars, dates, NaN) leaked through.
        text = json.dumps(payload, allow_nan=False)
        assert json.loads(text) == payload

    def test_value_conversion(self):
        with Session(self._wire_catalog()) as session:
            result = session.execute("SELECT g, f, s, d, b FROM w")
        payload = result.to_dict()
        assert payload["columns"] == ["g", "f", "s", "d", "b"]
        assert payload["types"] == ["int64", "float64", "string",
                                    "date", "bool"]
        rows = payload["rows"]
        assert rows[0] == [1, 1.5, "a", "2024-06-01", True]
        assert rows[1][1] is None  # NaN → null, not 'NaN'
        assert rows[1][2] is None and rows[1][3] is None
        assert all(type(r[0]) is int for r in rows)  # not np.int64

    def test_aggregate_outputs_are_plain_types(self):
        import json
        with Session(self._wire_catalog()) as session:
            result = session.execute(
                "SELECT g, sum(f) OVER (PARTITION BY g) AS t, "
                "count(s) OVER () AS c FROM w")
        text = json.dumps(result.to_dict(), allow_nan=False)
        assert json.loads(text)["row_count"] == 3

    def test_trace_included_and_excludable(self):
        import json
        with Session(self._wire_catalog()) as session:
            result = session.execute("SELECT g FROM w", trace=True)
        with_trace = result.to_dict()
        assert with_trace["trace"]["name"] == "query"
        json.dumps(with_trace, allow_nan=False)
        assert "trace" not in result.to_dict(include_trace=False)

    def test_untraced_trace_field_is_null(self):
        with Session(self._wire_catalog()) as session:
            result = session.execute("SELECT g FROM w")
        assert result.to_dict()["trace"] is None

    def test_stats_survive_round_trip(self):
        import json
        with Session(self._wire_catalog()) as session:
            result = session.execute(
                "SELECT g, sum(g) OVER (PARTITION BY g ORDER BY g "
                "ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) AS s "
                "FROM w")
        stats = json.loads(json.dumps(result.to_dict(),
                                      allow_nan=False))["stats"]
        assert stats["outcome"] == "ok"
        assert isinstance(stats["strategies"], list)
