"""Drift guard: ``known_fault_sites()`` vs the engine's fire() calls.

The fault-site list and the engine drifted once (sites documented that
nothing fired, sites fired that nothing documented); this test greps
the source tree for the actual ``fire(...)`` call sites — literal
``ctx.fire("...")`` calls plus the ``fault_site=...`` indirection the
parallel layer uses — and asserts the set matches
:func:`repro.resilience.faults.known_fault_sites` exactly. Arming an
unknown site is a hard error, so a chaos test can never silently
target a site the engine stopped firing.
"""

import re
from pathlib import Path

import pytest

from repro.resilience.faults import (
    NO_FAULTS,
    FaultInjector,
    known_fault_sites,
)

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: ``something.fire("site.name")`` — the direct call sites.
_LITERAL = re.compile(r"""\.fire\(\s*['"]([a-z_][a-z_.]*)['"]""")
#: ``fault_site: str = "..."`` / ``fault_site="..."`` — the parallel
#: layer routes one fire() call through a parameter.
_DYNAMIC = re.compile(
    r"""fault_site(?:\s*:\s*str)?\s*=\s*['"]([a-z_][a-z_.]*)['"]""")


def _sites_fired_in_tree():
    found = set()
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        found.update(_LITERAL.findall(text))
        found.update(_DYNAMIC.findall(text))
    return found


def test_known_sites_match_fire_call_sites_exactly():
    fired = _sites_fired_in_tree()
    known = set(known_fault_sites())
    assert fired == known, (
        f"fault-site drift: fired-but-unknown={sorted(fired - known)} "
        f"known-but-never-fired={sorted(known - fired)}")


def test_known_sites_are_sorted_and_nonempty():
    sites = known_fault_sites()
    assert sites == sorted(sites)
    assert "memory.reserve" in sites
    assert "partition.spill" in sites
    assert "partition.reload" in sites
    # The process-pool supervision sites (chaos hooks for the worker
    # crash/retry/degrade ladder).
    assert "worker.spawn" in sites
    assert "worker.heartbeat" in sites
    assert "worker.retry" in sites
    assert "shm.attach" in sites


def test_plan_rejects_unknown_site():
    with pytest.raises(ValueError, match="unknown fault site"):
        FaultInjector().plan("definitely.not.a.site")


def test_plan_accepts_every_known_site():
    injector = FaultInjector()
    for site in known_fault_sites():
        injector.plan(site, times=0)  # armed but never due


def test_shared_disabled_injector_stays_unarmed():
    assert not NO_FAULTS.armed
