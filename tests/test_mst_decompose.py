"""Run decomposition: coverage, alignment and size bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mst.decompose import (
    decompose_range,
    decompose_ranges,
    max_runs_per_level,
    num_levels,
)


def test_empty_range():
    assert decompose_range(3, 3, 2, 10) == []
    assert decompose_range(0, 0, 2, 0) == []


def test_full_range_single_run_when_power():
    runs = decompose_range(0, 8, 2, 8)
    assert runs == [(3, 0, 8)]


def test_out_of_bounds_rejected():
    with pytest.raises(ValueError):
        decompose_range(-1, 5, 2, 10)
    with pytest.raises(ValueError):
        decompose_range(0, 11, 2, 10)
    with pytest.raises(ValueError):
        decompose_range(5, 3, 2, 10)


def test_fanout_must_be_at_least_two():
    with pytest.raises(ValueError):
        decompose_range(0, 4, 1, 8)


def _check_decomposition(lo, hi, fanout, n):
    runs = decompose_range(lo, hi, fanout, n)
    covered = []
    for level, start, stop in runs:
        length = fanout ** level
        assert stop - start == length, "whole runs only"
        assert start % length == 0, "aligned runs only"
        assert lo <= start and stop <= hi, "runs inside the query range"
        assert stop <= n
        covered.extend(range(start, stop))
    assert covered == list(range(lo, hi)), "exact disjoint coverage"
    per_level = {}
    for level, _, _ in runs:
        per_level[level] = per_level.get(level, 0) + 1
    for level, count in per_level.items():
        assert count <= max_runs_per_level(fanout)


@pytest.mark.parametrize("fanout", [2, 3, 4, 7, 32])
def test_decomposition_exhaustive_small(fanout):
    n = 20
    for lo in range(n + 1):
        for hi in range(lo, n + 1):
            _check_decomposition(lo, hi, fanout, n)


@given(st.integers(2, 16), st.integers(0, 300), st.integers(0, 300),
       st.integers(1, 300))
@settings(max_examples=200, deadline=None)
def test_decomposition_property(fanout, a, b, n):
    lo, hi = sorted((a % (n + 1), b % (n + 1)))
    _check_decomposition(lo, hi, fanout, n)


def test_decompose_ranges_multiple():
    runs = list(decompose_ranges([(0, 3), (5, 9)], 2, 10))
    covered = sorted(p for _, s, e in runs for p in range(s, e))
    assert covered == [0, 1, 2, 5, 6, 7, 8]


@pytest.mark.parametrize("n,fanout,expected", [
    (0, 2, 1), (1, 2, 1), (2, 2, 2), (3, 2, 3), (4, 2, 3),
    (8, 2, 4), (9, 2, 5), (1000, 10, 4), (1, 32, 1), (33, 32, 3),
])
def test_num_levels(n, fanout, expected):
    assert num_levels(n, fanout) == expected
