"""Counted B-tree (order statistic tree) correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ostree import CountedBTree, windowed_kth_ostree, \
    windowed_percentile_ostree, windowed_rank_ostree


class TestCountedBTree:
    def test_insert_iterate_sorted(self, rng):
        tree = CountedBTree(order=4)
        values = rng.integers(0, 100, size=200).tolist()
        for v in values:
            tree.insert(v)
        assert list(tree) == sorted(values)
        assert len(tree) == 200
        tree.check_invariants()

    def test_kth_and_rank(self, rng):
        tree = CountedBTree(order=6)
        values = sorted(rng.integers(0, 50, size=100).tolist())
        for v in values:
            tree.insert(v)
        for k in range(100):
            assert tree.kth(k) == values[k]
        for probe in range(-1, 52):
            expected = sum(1 for v in values if v < probe)
            assert tree.rank(probe) == expected

    def test_kth_out_of_range(self):
        tree = CountedBTree()
        tree.insert(1)
        with pytest.raises(IndexError):
            tree.kth(1)
        with pytest.raises(IndexError):
            tree.kth(-1)

    def test_delete_missing_raises(self):
        tree = CountedBTree()
        tree.insert(5)
        with pytest.raises(KeyError):
            tree.delete(7)

    def test_order_validation(self):
        with pytest.raises(ValueError):
            CountedBTree(order=2)

    def test_insert_delete_random_unique(self, rng):
        """Unique (value, id) keys: the windowed wrappers' usage."""
        tree = CountedBTree(order=4)
        alive = []
        for step in range(600):
            if alive and rng.random() < 0.45:
                victim = alive.pop(int(rng.integers(0, len(alive))))
                tree.delete(victim)
            else:
                key = (int(rng.integers(0, 20)), step)
                tree.insert(key)
                alive.append(key)
            assert len(tree) == len(alive)
        tree.check_invariants()
        assert list(tree) == sorted(alive)

    @given(st.lists(st.integers(0, 8), max_size=120),
           st.integers(4, 16))
    @settings(max_examples=80, deadline=None)
    def test_multiset_semantics_hypothesis(self, values, order):
        tree = CountedBTree(order=order)
        for i, v in enumerate(values):
            tree.insert((v, i))
        expected = sorted((v, i) for i, v in enumerate(values))
        assert list(tree) == expected
        for k in range(len(values)):
            assert tree.kth(k) == expected[k]
        tree.check_invariants()


class TestWindowed:
    def test_windowed_percentile_matches_sorted_oracle(self, rng):
        n = 120
        values = rng.integers(0, 40, size=n).tolist()
        start = np.maximum(np.arange(n) - 15, 0)
        end = np.arange(n) + 1
        got = windowed_percentile_ostree(values, start, end, 0.5)
        for i in range(n):
            frame = sorted(values[start[i]:end[i]])
            k = max(int(np.ceil(0.5 * len(frame))) - 1, 0)
            assert got[i] == frame[k]

    def test_windowed_kth_out_of_range_gives_none(self):
        values = [5, 6, 7]
        start = np.array([0, 0, 0])
        end = np.array([1, 2, 3])
        got = windowed_kth_ostree(values, start, end, [5, 1, 2])
        assert got == [None, 6, 7]

    def test_windowed_rank(self, rng):
        n = 80
        values = rng.integers(0, 30, size=n).tolist()
        start = np.maximum(np.arange(n) - 9, 0)
        end = np.arange(n) + 1
        got = windowed_rank_ostree(values, start, end)
        for i in range(n):
            frame = values[start[i]:end[i]]
            expected = sum(1 for v in frame if v < values[i]) + 1
            assert got[i] == expected

    def test_non_monotonic_frames(self, rng):
        n = 60
        values = rng.integers(0, 20, size=n).tolist()
        start = rng.integers(0, n, size=n)
        end = np.minimum(start + rng.integers(0, 20, size=n), n)
        ks = [max((e - s) // 2, 0) for s, e in zip(start, end)]
        got = windowed_kth_ostree(values, start, end, ks)
        for i in range(n):
            frame = sorted(values[start[i]:end[i]])
            if not frame:
                assert got[i] is None
            else:
                assert got[i] == frame[ks[i]]

    def test_work_counter_grows_with_non_monotonicity(self, rng):
        """The Section 3.2 effect in microcosm: less frame overlap means
        strictly more maintenance work."""
        from repro.ostree.windowed import _SlidingTree
        n = 200
        values = rng.integers(0, 50, size=n).tolist()
        smooth = _SlidingTree(values)
        for i in range(n):
            smooth.move_to(max(i - 20, 0), i + 1)
        jumpy = _SlidingTree(values)
        jitter = rng.integers(0, 50, size=n)
        for i in range(n):
            lo = max(i - 20 - int(jitter[i]), 0)
            jumpy.move_to(lo, min(lo + 21, n))
        assert jumpy.work > smooth.work
