"""Graceful drain (SIGTERM) and tenant hot-reload (SIGHUP).

Two layers of coverage: :meth:`QueryServer.drain` in-process (the
in-flight request finishes, the listener refuses new connections, the
drain completes) and the real ``python -m repro.serve`` process over
signals — SIGTERM exits 0 after draining, SIGHUP swaps the tenant
policy file with validation-before-swap so a malformed file logs and
keeps the old policies instead of crashing or dropping limits.
"""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.serve import QueryService, ServerThread, TenantPolicy, \
    TenantRegistry
from repro.sql import Catalog, Session, SessionConfig
from repro.table import DataType, Table

SQL = "SELECT v FROM t"


def _catalog():
    return Catalog({"t": Table.from_dict(
        {"v": (DataType.INT64, [1, 2, 3])})})


# ----------------------------------------------------------------------
# QueryServer.drain in-process
# ----------------------------------------------------------------------
def test_drain_finishes_in_flight_and_refuses_new():
    session = Session(_catalog())
    service = QueryService(session, own_session=True)
    release = threading.Event()
    orig_execute = service.execute

    async def slow_execute(body, tenant, priority):
        # Park the request until the test has started the drain.
        await asyncio.get_running_loop().run_in_executor(
            None, release.wait)
        return await orig_execute(body, tenant, priority)

    service.execute = slow_execute
    results = {}

    with ServerThread(service) as handle:
        port = handle.port

        def client():
            conn = HTTPConnection("127.0.0.1", port, timeout=30)
            conn.request("POST", "/v1/execute",
                         body=json.dumps({"sql": SQL}),
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            results["status"] = response.status
            results["body"] = json.loads(response.read())
            conn.close()

        worker = threading.Thread(target=client)
        worker.start()
        deadline = time.time() + 10
        while handle.server._active == 0 and time.time() < deadline:
            time.sleep(0.01)
        assert handle.server._active == 1

        future = asyncio.run_coroutine_threadsafe(
            handle.server.drain(timeout=15.0), handle._loop)
        time.sleep(0.1)  # listener is now closed
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=1)

        release.set()
        future.result(timeout=15)
        worker.join(timeout=15)

    assert results["status"] == 200
    assert results["body"]["row_count"] == 3
    service.close()


def test_drain_timeout_cancels_stragglers():
    session = Session(_catalog())
    service = QueryService(session, own_session=True)
    started = threading.Event()
    release = threading.Event()
    orig_execute = service.execute

    async def stuck_execute(body, tenant, priority):
        started.set()
        await asyncio.get_running_loop().run_in_executor(
            None, release.wait)
        return await orig_execute(body, tenant, priority)

    service.execute = stuck_execute
    with ServerThread(service) as handle:
        port = handle.port

        def client():
            conn = HTTPConnection("127.0.0.1", port, timeout=30)
            try:
                conn.request("POST", "/v1/execute",
                             body=json.dumps({"sql": SQL}),
                             headers={"Content-Type":
                                      "application/json"})
                conn.getresponse().read()
            except Exception:
                pass  # the drain deadline cancels this request
            finally:
                conn.close()

        worker = threading.Thread(target=client, daemon=True)
        worker.start()
        assert started.wait(timeout=10)
        future = asyncio.run_coroutine_threadsafe(
            handle.server.drain(timeout=0.2), handle._loop)
        future.result(timeout=15)  # returns despite the stuck request
        release.set()
        worker.join(timeout=15)
    service.close()


def test_drain_with_no_traffic_completes_immediately():
    session = Session(_catalog())
    service = QueryService(session, own_session=True)
    with ServerThread(service) as handle:
        future = asyncio.run_coroutine_threadsafe(
            handle.server.drain(timeout=5.0), handle._loop)
        future.result(timeout=10)
    service.close()


# ----------------------------------------------------------------------
# replace_policies (the SIGHUP swap primitive)
# ----------------------------------------------------------------------
def test_replace_policies_preserves_state_and_clamps_tokens():
    registry = TenantRegistry(policies={
        "etl": TenantPolicy(priority="batch", rate=100.0, burst=50)})
    for _ in range(3):
        registry.acquire("etl")
        registry.release("etl")
    registry.acquire("etl")  # leave one in flight across the swap
    registry.replace_policies({
        "etl": TenantPolicy(priority="batch", rate=1.0, burst=2)})
    snap = {s.tenant: s for s in registry.stats()}["etl"]
    assert snap.admitted == 4          # counters survive
    assert snap.in_flight == 1         # in-flight quota survives
    assert snap.tokens <= 2.0          # clamped to the new burst
    registry.release("etl")
    # The new policy is live: burst 2 from a drained bucket.
    registry.acquire("etl")
    registry.acquire("etl")
    from repro.errors import TenantRateLimitError
    with pytest.raises(TenantRateLimitError):
        registry.acquire("etl")


def test_replace_policies_reverts_removed_tenant_to_default():
    registry = TenantRegistry(policies={
        "vip": TenantPolicy(rate=1000.0, burst=100)})
    registry.acquire("vip")
    registry.release("vip")
    registry.replace_policies({})
    assert registry.policy_for("vip").burst == 10  # DEFAULT_POLICY
    snap = {s.tenant: s for s in registry.stats()}["vip"]
    assert snap.tokens <= 10.0


# ----------------------------------------------------------------------
# the real process under signals
# ----------------------------------------------------------------------
def _spawn_server(tmp_path, tenants=None):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env.pop("REPRO_MEMORY_BUDGET", None)  # soak leg must not starve it
    argv = [sys.executable, "-m", "repro.serve", "--port", "0",
            "--rows", "50", "--drain-timeout", "10"]
    if tenants is not None:
        argv += ["--tenants", str(tenants)]
    proc = subprocess.Popen(argv, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)
    line = proc.stdout.readline()
    assert "listening on http://" in line, line
    port = int(line.split("http://127.0.0.1:")[1].split()[0])
    return proc, port


def _get_status(port, tenant="anonymous"):
    conn = HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("POST", "/v1/execute",
                     body=json.dumps({"sql": "SELECT count(*) OVER ()"
                                             " AS c FROM lineitem"}),
                     headers={"Content-Type": "application/json",
                              "x-repro-tenant": tenant})
        return conn.getresponse().status
    finally:
        conn.close()


@pytest.mark.skipif(not hasattr(signal, "SIGTERM"), reason="no signals")
def test_sigterm_drains_and_exits_zero(tmp_path):
    proc, port = _spawn_server(tmp_path)
    try:
        assert _get_status(port) == 200
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=30)
        assert proc.returncode == 0, stderr
        assert "draining" in stderr
        assert "drained, bye" in stderr
    finally:
        if proc.poll() is None:
            proc.kill()


@pytest.mark.skipif(not hasattr(signal, "SIGHUP"), reason="no SIGHUP")
def test_sighup_hot_reloads_tenants_and_survives_bad_file(tmp_path):
    policy_file = tmp_path / "tenants.json"
    policy_file.write_text(json.dumps(
        {"etl": {"priority": "batch", "burst": 5}}))
    proc, port = _spawn_server(tmp_path, tenants=policy_file)
    try:
        assert _get_status(port, tenant="etl") == 200

        # Good reload: suspend the tenant outright (rate=0 -> 429).
        policy_file.write_text(json.dumps(
            {"etl": {"priority": "batch", "rate": 0}}))
        proc.send_signal(signal.SIGHUP)
        deadline = time.time() + 10
        while time.time() < deadline:
            if _get_status(port, tenant="etl") == 429:
                break
            time.sleep(0.1)
        assert _get_status(port, tenant="etl") == 429

        # Bad reload: malformed JSON keeps the suspension in place.
        policy_file.write_text("{not json")
        proc.send_signal(signal.SIGHUP)
        time.sleep(0.5)
        assert _get_status(port, tenant="etl") == 429
        # Bad reload: invalid policy content is rejected pre-swap too.
        policy_file.write_text(json.dumps({"etl": {"burst": -5}}))
        proc.send_signal(signal.SIGHUP)
        time.sleep(0.5)
        assert _get_status(port, tenant="etl") == 429
        assert _get_status(port, tenant="other") == 200  # still serving

        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=30)
        assert proc.returncode == 0, stderr
        assert stderr.count("SIGHUP: reload") >= 2
        assert "keeping current tenant policies" in stderr
        assert "reloaded 1 tenant policies" in stderr
    finally:
        if proc.poll() is None:
            proc.kill()
