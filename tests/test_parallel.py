"""Task-parallel cost model: scheduling laws and calibrated shapes."""

import pytest

from repro.parallel import (
    ALGORITHMS,
    MachineModel,
    WindowWorkload,
    algorithm_tasks,
    makespan,
    simulate,
    throughput_series,
)
from repro.parallel.simulate import crossover_point, summary_row


class TestMakespan:
    def test_empty(self):
        assert makespan([], 4) == 0.0

    def test_single_worker_is_sum(self):
        assert makespan([1.0, 2.0, 3.0], 1) == 6.0

    def test_perfect_split(self):
        assert makespan([1.0] * 8, 4) == pytest.approx(2.0)

    def test_bounded_below_by_longest_task(self):
        assert makespan([10.0, 1.0, 1.0], 8) == 10.0

    def test_never_better_than_ideal(self):
        costs = [3.0, 1.0, 4.0, 1.0, 5.0]
        for workers in (1, 2, 3, 8):
            assert makespan(costs, workers) >= sum(costs) / workers - 1e-12

    def test_more_workers_never_slower(self):
        costs = list(range(1, 20))
        times = [makespan(costs, w) for w in (1, 2, 4, 8, 16)]
        assert times == sorted(times, reverse=True)


class TestCostModels:
    def test_all_algorithms_produce_tasks(self):
        workload = WindowWorkload(n=100_000, frame_size=1_000)
        for name in ALGORITHMS:
            build, tasks = algorithm_tasks(name, workload)
            assert build >= 0
            assert tasks and all(t > 0 for t in tasks)

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            algorithm_tasks("quantum", WindowWorkload(10, 5))

    def test_serial_mode_single_task(self):
        workload = WindowWorkload(n=100_000, frame_size=500)
        _, tasks = algorithm_tasks("incremental_median", workload,
                                   serial=True)
        assert len(tasks) == 1

    def test_task_count_follows_task_size(self):
        workload = WindowWorkload(n=100_000, frame_size=500)
        _, tasks = algorithm_tasks("mst", workload, task_size=20_000)
        assert len(tasks) == 5


class TestCalibratedShapes:
    """The model must land on the paper's published operating points."""

    def test_mst_peak_near_9_5m(self):
        sim = simulate("mst", WindowWorkload(n=6_000_000, frame_size=1000))
        assert 8e6 < sim.throughput(6_000_000) < 11e6

    def test_mst_flat_in_frame_size(self):
        tps = [simulate("mst", WindowWorkload(6_000_000, f)).throughput(
            6_000_000) for f in (10, 1_000, 100_000, 6_000_000)]
        assert max(tps) / min(tps) < 1.05

    @pytest.mark.parametrize("algorithm,paper_frame", [
        ("naive_median", 130),
        ("incremental_median", 700),
        ("ostree_median", 20_000),
        ("incremental_distinct", 50_000),
    ])
    def test_crossovers_near_paper(self, algorithm, paper_frame):
        n = 6_000_000
        # ascending frames: the competitor wins small frames, the MST
        # overtakes at the crossover
        frames = [int(paper_frame * factor)
                  for factor in (0.25, 0.5, 0.8, 1.3, 2, 4)]
        found = crossover_point(
            algorithm, "mst",
            [WindowWorkload(n=n, frame_size=f) for f in frames])
        assert found is not None, f"{algorithm} never crossed"
        assert paper_frame / 2 <= found.frame_size <= paper_frame * 2

    def test_task_parallelism_hurts_incremental(self):
        """Section 3.2: under task-based parallelism the incremental
        distinct count re-builds its hash table at every 20k-tuple task
        boundary, inflating total work well past the serial run."""
        workload = WindowWorkload(n=1_000_000, frame_size=100_000)
        parallel = simulate("incremental_distinct", workload)
        serial = simulate("incremental_distinct", workload, serial=True)
        assert parallel.total_work_ops > serial.total_work_ops * 2

    def test_mst_embarrassingly_parallel(self):
        workload = WindowWorkload(n=2_000_000, frame_size=10_000)
        result = simulate("mst", workload)
        assert result.parallel_efficiency > 0.8

    def test_nonmonotonic_delta_degrades_incremental_only(self):
        smooth = WindowWorkload(n=1_000_000, frame_size=500, avg_delta=2)
        jumpy = WindowWorkload(n=1_000_000, frame_size=500, avg_delta=300)
        inc_smooth = simulate("incremental_median", smooth)
        inc_jumpy = simulate("incremental_median", jumpy)
        assert inc_jumpy.wall_seconds > inc_smooth.wall_seconds * 10
        mst_smooth = simulate("mst", smooth)
        mst_jumpy = simulate("mst", jumpy)
        assert mst_jumpy.wall_seconds == mst_smooth.wall_seconds

    def test_incremental_falls_below_naive_at_high_delta(self):
        """The Figure 12 endgame."""
        workload = WindowWorkload(n=1_000_000, frame_size=500,
                                  avg_delta=330)
        inc = simulate("incremental_median", workload)
        naive = simulate("naive_median", workload)
        assert inc.wall_seconds > naive.wall_seconds


class TestHelpers:
    def test_throughput_series(self):
        series = throughput_series(
            "mst", [WindowWorkload(n, n * 0.05)
                    for n in (50_000, 800_000)])
        assert len(series) == 2
        assert series[1] > series[0]

    def test_summary_row(self):
        row = summary_row("mst", WindowWorkload(n=100_000,
                                                frame_size=5_000))
        assert row["parallel_tuples_per_s"] > row["serial_tuples_per_s"]

    def test_machine_model_scaling(self):
        workload = WindowWorkload(n=1_000_000, frame_size=1_000)
        few = simulate("mst", workload, machine=MachineModel(workers=4))
        many = simulate("mst", workload, machine=MachineModel(workers=40))
        assert many.throughput(1_000_000) > few.throughput(1_000_000) * 4
