"""Merge sort tree construction invariants."""

import numpy as np
import pytest

from repro.mst.aggregates import SUM
from repro.mst.build import (
    build_levels_numpy,
    build_levels_scalar,
    choose_index_dtype,
)


def _assert_levels_valid(levels, keys):
    n = len(keys)
    assert np.array_equal(levels.keys[0], keys)
    for level in range(levels.height):
        arr = levels.keys[level]
        assert len(arr) == n
        run = levels.fanout ** level
        for start in range(0, n, run):
            stop = min(start + run, n)
            segment = arr[start:stop]
            assert np.all(segment[:-1] <= segment[1:]), \
                f"run [{start},{stop}) at level {level} not sorted"
        # each level is a permutation of the input
        assert sorted(arr.tolist()) == sorted(keys.tolist())
    # top level fully sorted
    top = levels.keys[-1]
    assert np.all(top[:-1] <= top[1:])


@pytest.mark.parametrize("builder", [build_levels_numpy, build_levels_scalar])
@pytest.mark.parametrize("fanout", [2, 3, 5, 32])
def test_levels_sorted_runs(builder, fanout, rng):
    keys = rng.integers(-5, 40, size=101)
    levels = builder(keys, fanout=fanout, sample_every=4)
    _assert_levels_valid(levels, keys)


@pytest.mark.parametrize("n", [0, 1, 2, 3, 64, 65, 100])
def test_edge_sizes(n, rng):
    keys = rng.integers(0, 10, size=n)
    levels = build_levels_numpy(keys, fanout=2)
    assert levels.n == n
    if n:
        _assert_levels_valid(levels, keys)


def test_builders_produce_identical_levels_and_bridges(rng):
    keys = rng.integers(0, 30, size=77)
    for fanout in (2, 4):
        for k in (1, 3, 16):
            a = build_levels_numpy(keys, fanout=fanout, sample_every=k)
            b = build_levels_scalar(keys, fanout=fanout, sample_every=k)
            for la, lb in zip(a.keys, b.keys):
                assert np.array_equal(la, lb)
            for ba, bb in zip(a.bridges, b.bridges):
                if ba is None:
                    assert bb is None
                else:
                    assert np.array_equal(ba, bb)


def test_bridges_are_consumed_counts(rng):
    """Bridge rows must equal, per child, the number of that child's
    elements among the first s*k outputs of the parent slab."""
    keys = rng.integers(0, 50, size=60)
    fanout, k = 2, 4
    levels = build_levels_scalar(keys, fanout=fanout, sample_every=k)
    for level in range(1, levels.height):
        child_len = fanout ** (level - 1)
        parent_len = child_len * fanout
        bridge = levels.bridges[level]
        spslab = levels.samples_per_slab(level)
        for slab_start in range(0, levels.n, parent_len):
            slab_stop = min(slab_start + parent_len, levels.n)
            # Reconstruct the merge to count consumption.
            children = []
            for c in range(fanout):
                lo = slab_start + c * child_len
                hi = min(lo + child_len, slab_stop)
                if lo < hi:
                    children.append(list(levels.keys[level - 1][lo:hi]))
                else:
                    children.append([])
            heads = [0] * fanout
            slab_index = slab_start // parent_len
            for out_pos in range(slab_start, slab_stop):
                rel = out_pos - slab_start
                if rel % k == 0:
                    row = slab_index * spslab + rel // k
                    for c in range(fanout):
                        assert bridge[row, c] == heads[c], \
                            (level, slab_start, out_pos, c)
                best = min(
                    (c for c in range(fanout)
                     if heads[c] < len(children[c])),
                    key=lambda c: (children[c][heads[c]], c))
                heads[best] += 1


def test_non_integer_keys_rejected():
    with pytest.raises(ValueError):
        build_levels_numpy(np.array([1.5, 2.5]))
    with pytest.raises(ValueError):
        build_levels_numpy(np.array([[1, 2], [3, 4]]))


def test_aggregate_requires_payload(rng):
    with pytest.raises(ValueError):
        build_levels_numpy(rng.integers(0, 5, 10), aggregate=SUM)


def test_aggregate_prefix_annotation(rng):
    keys = rng.integers(0, 20, size=33)
    payload = rng.normal(size=33)
    levels = build_levels_numpy(keys, fanout=2, aggregate=SUM,
                                payload=payload)
    # level 0 prefixes are the payload itself (runs of length 1)
    assert np.allclose(levels.agg_prefix[0], payload)
    # every level's run-end prefix equals the run's payload sum
    # (aggregate values travel with their keys through the merge)
    total = payload.sum()
    top_prefix = levels.agg_prefix[-1]
    assert np.isclose(top_prefix[-1], total)


def test_choose_index_dtype():
    assert choose_index_dtype(100) == np.dtype(np.int32)
    assert choose_index_dtype(2 ** 31) == np.dtype(np.int64)


def test_index_dtype_applied(rng):
    small = build_levels_numpy(rng.integers(0, 50, size=100))
    assert small.keys[0].dtype == np.int32
