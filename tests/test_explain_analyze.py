"""EXPLAIN ANALYZE: annotated plans, golden rendering, determinism."""

import os

import pytest

from repro.resilience.context import SimulatedClock
from repro.sql import Catalog, Session, SessionConfig
from repro.table import DataType, Table

GOLDEN = os.path.join(os.path.dirname(__file__), "golden",
                      "explain_analyze.txt")

SQL = ("SELECT g, percentile_disc(0.5) WITHIN GROUP (ORDER BY v) "
       "OVER (PARTITION BY g) AS med, "
       "count(DISTINCT v) OVER (PARTITION BY g) AS c FROM t")


def _catalog():
    table = Table.from_dict({
        "g": (DataType.INT64, [1, 1, 2, 2, 2, 1]),
        "v": (DataType.INT64, [5, 3, 8, 1, 4, 5]),
    })
    return Catalog({"t": table})


def _session():
    # A simulated clock renders every duration as 0.000ms and workers=1
    # pins the scheduler to the serial strategy on thread t0 — the two
    # knobs that make the ANALYZE rendering byte-stable.
    config = SessionConfig(budget_bytes=1 << 20, workers=1,
                           clock=SimulatedClock())
    return Session(_catalog(), config=config)


class TestExplainAnalyze:
    def test_matches_the_golden_file(self, monkeypatch):
        # The memory-soak CI leg budgets every session through the
        # environment, which adds a Memory section to EXPLAIN; the
        # golden file captures the unbudgeted rendering, so pin the
        # env like the other byte-stability knobs above.
        monkeypatch.delenv("REPRO_MEMORY_BUDGET", raising=False)
        monkeypatch.delenv("REPRO_OUT_OF_CORE", raising=False)
        with _session() as session:
            text = session.explain(SQL, analyze=True)
        with open(GOLDEN) as handle:
            assert text == handle.read()

    def test_rendering_is_deterministic(self):
        with _session() as session:
            first = session.explain(SQL, analyze=True)
        with _session() as session:
            second = session.explain(SQL, analyze=True)
        assert first == second

    def test_annotates_actual_rows_and_phases(self):
        with Session(_catalog()) as session:
            text = session.explain(SQL, analyze=True)
        assert "(actual: rows=6" in text          # Project
        assert "groups=1" in text                  # Window
        assert "Scan t (actual: rows=6)" in text   # Scan
        assert "Execution (actual)" in text
        assert "phases:" in text
        for phase in ("parse=", "plan=", "partition=", "window.group=",
                      "probe=", "gateway.wait="):
            assert phase in text

    def test_structure_builds_then_reuses(self):
        with Session(_catalog()) as session:
            cold = session.explain(SQL, analyze=True)
            warm = session.explain(SQL, analyze=True)
        assert "structure.build" in cold
        assert "builds=4, reuses=0" in cold      # 2 partitions x 2 kinds
        assert "builds=0, reuses=4" in warm
        assert "structure.reuse x4" in warm

    def test_plain_explain_has_no_actuals(self):
        with Session(_catalog()) as session:
            text = session.explain(SQL)
        assert "actual" not in text

    def test_analyze_executes_through_the_gateway(self):
        with Session(_catalog()) as session:
            before = session.gateway.stats().admitted
            session.explain(SQL, analyze=True)
            assert session.gateway.stats().admitted == before + 1


class TestTraceDeterminism:
    def test_results_identical_with_tracing_on_and_off(self):
        """Tracing must be observation only: bit-identical results under
        the shared 4-worker pool (the CI matrix's REPRO_WORKERS=4 leg
        runs this same check with parallel morsel execution)."""
        config = SessionConfig(workers=4)
        with Session(_catalog(), config=config) as session:
            plain = session.execute(SQL, trace=False)
            traced = session.execute(SQL, trace=True)
        assert traced.trace is not None
        assert plain.trace is None
        for name in ("g", "med", "c"):
            assert (traced.column(name).to_list()
                    == plain.column(name).to_list())

    @pytest.mark.parametrize("workers", [1, 4])
    def test_traced_rerun_is_stable(self, workers):
        config = SessionConfig(workers=workers)
        with Session(_catalog(), config=config) as session:
            first = session.execute(SQL, trace=True)
            second = session.execute(SQL, trace=True)
        for name in ("g", "med", "c"):
            assert (first.column(name).to_list()
                    == second.column(name).to_list())
