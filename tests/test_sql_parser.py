"""SQL parser: shapes of parsed statements, incl. the paper's queries."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import ast, parse


class TestBasics:
    def test_minimal(self):
        stmt = parse("select 1")
        assert len(stmt.items) == 1
        assert stmt.items[0].expr == ast.Literal(1)

    def test_aliases(self):
        stmt = parse("select a as x, b y, c from t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.items[2].alias is None

    def test_star(self):
        stmt = parse("select *, t.* from t")
        assert isinstance(stmt.items[0].expr, ast.Star)
        assert stmt.items[1].expr == ast.Star("t")

    def test_where_group_having_order_limit(self):
        stmt = parse("""
            select g, count(*) from t where x > 1
            group by g having count(*) > 2
            order by 2 desc nulls first limit 5
        """)
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].descending
        assert stmt.order_by[0].nulls_last is False
        assert stmt.limit == 5

    def test_distinct(self):
        assert parse("select distinct a from t").distinct

    def test_trailing_semicolon(self):
        parse("select 1;")

    def test_errors(self):
        with pytest.raises(SqlSyntaxError):
            parse("select")
        with pytest.raises(SqlSyntaxError):
            parse("select 1 from")
        with pytest.raises(SqlSyntaxError):
            parse("select 1 extra_tokens 2 3")
        with pytest.raises(SqlSyntaxError):
            parse("select 1 limit x")


class TestExpressions:
    def test_precedence(self):
        expr = parse("select 1 + 2 * 3").items[0].expr
        assert expr == ast.BinaryOp(
            "+", ast.Literal(1),
            ast.BinaryOp("*", ast.Literal(2), ast.Literal(3)))

    def test_comparison_chain_and_logic(self):
        expr = parse("select a < b and not c = d or e").items[0].expr
        assert isinstance(expr, ast.BinaryOp) and expr.op == "or"

    def test_between_and_in(self):
        expr = parse("select a between 1 and 2").items[0].expr
        assert isinstance(expr, ast.BetweenExpr)
        expr = parse("select a not in (1, 2)").items[0].expr
        assert isinstance(expr, ast.InExpr) and expr.negated

    def test_is_null(self):
        expr = parse("select a is not null").items[0].expr
        assert isinstance(expr, ast.IsNullExpr) and expr.negated

    def test_case(self):
        expr = parse("select case when a then 1 else 2 end").items[0].expr
        assert isinstance(expr, ast.CaseExpr)
        simple = parse("select case a when 1 then 'x' end").items[0].expr
        assert isinstance(simple.whens[0][0], ast.BinaryOp)

    def test_literals(self):
        stmt = parse("select null, true, false, date '2020-01-02', "
                     "interval '1 week'")
        values = [item.expr for item in stmt.items]
        assert values[0] == ast.Literal(None)
        assert values[1] == ast.Literal(True)
        assert isinstance(values[4], ast.IntervalLiteral)
        assert values[4].days == 7

    def test_qualified_refs(self):
        expr = parse("select t.x").items[0].expr
        assert expr == ast.ColumnRef("x", table="t")

    def test_scalar_subquery_and_exists(self):
        expr = parse("select (select 1)").items[0].expr
        assert isinstance(expr, ast.ScalarSubquery)
        expr = parse("select exists (select 1)").items[0].expr
        assert isinstance(expr, ast.ExistsExpr)


class TestFunctionCalls:
    def test_distinct_and_star(self):
        expr = parse("select count(distinct x)").items[0].expr
        assert expr.distinct
        expr = parse("select count(*)").items[0].expr
        assert expr.star

    def test_in_call_order_by(self):
        """The paper's extension syntax: rank(order by tps desc)."""
        expr = parse("select rank(order by tps desc)").items[0].expr
        assert expr.args == ()
        assert expr.order_by[0].descending

    def test_args_then_order_by(self):
        """percentile_disc(0.99, order by x) — Section 1."""
        expr = parse(
            "select percentile_disc(0.99, order by delay)").items[0].expr
        assert expr.args == (ast.Literal(0.99),)
        assert expr.order_by[0].expr == ast.ColumnRef("delay")

    def test_within_group(self):
        expr = parse("select percentile_disc(0.5) within group "
                     "(order by x)").items[0].expr
        assert expr.within_group[0].expr == ast.ColumnRef("x")

    def test_filter(self):
        expr = parse("select sum(a) filter (where a > 0)").items[0].expr
        assert expr.filter_where is not None

    def test_ignore_nulls_and_from_last(self):
        expr = parse(
            "select nth_value(x, 2) from last ignore nulls").items[0].expr
        assert expr.from_last and expr.ignore_nulls


class TestWindows:
    def test_inline_window(self):
        expr = parse("""
            select sum(v) over (partition by g order by o
              rows between 3 preceding and current row exclude ties)
        """).items[0].expr
        assert isinstance(expr, ast.WindowFunc)
        window = expr.window
        assert window.partition_by == (ast.ColumnRef("g"),)
        assert window.frame.mode == "rows"
        assert window.frame.exclusion == "ties"

    def test_named_window(self):
        stmt = parse("""
            select rank(order by tps desc) over w from t
            window w as (order by d range between unbounded preceding
                         and current row)
        """)
        expr = stmt.items[0].expr
        assert expr.window == "w"
        assert stmt.windows[0][0] == "w"
        assert stmt.windows[0][1].frame.mode == "range"

    def test_shorthand_frame(self):
        expr = parse("select sum(v) over (order by o rows 5 preceding)"
                     ).items[0].expr
        frame = expr.window.frame
        assert frame.start.kind == "preceding"
        assert frame.end.kind == "current_row"

    def test_expression_bounds(self):
        expr = parse("""
            select median(p) over (order by t
              range between current row and good_for following)
        """).items[0].expr
        assert expr.window.frame.end.offset == ast.ColumnRef("good_for")

    def test_interval_bound(self):
        expr = parse("""
            select count(distinct c) over (order by d
              range between interval '1 month' preceding and current row)
        """).items[0].expr
        assert expr.window.frame.start.offset.days == 30


class TestFromClause:
    def test_joins(self):
        stmt = parse("select * from a join b on a.x = b.x")
        assert isinstance(stmt.from_, ast.Join)
        assert stmt.from_.kind == "inner"
        stmt = parse("select * from a cross join b")
        assert stmt.from_.kind == "cross"
        stmt = parse("select * from a left join b on a.x = b.x")
        assert stmt.from_.kind == "left"
        stmt = parse("select * from a, b")
        assert stmt.from_.kind == "cross"

    def test_derived_table(self):
        stmt = parse("select * from (select 1 as x) sub")
        assert isinstance(stmt.from_, ast.DerivedTable)
        assert stmt.from_.alias == "sub"

    def test_ctes(self):
        stmt = parse("with a as (select 1), b as (select 2) "
                     "select * from a, b")
        assert [name for name, _ in stmt.ctes] == ["a", "b"]


def test_paper_section_2_4_query_parses():
    parse("""
      select dbsystem, tps,
        count(distinct dbsystem) over w,
        rank(order by tps desc) over w,
        first_value(tps order by tps desc) over w,
        first_value(dbsystem order by tps desc) over w,
        lead(tps order by tps desc) over w,
        lead(dbsystem order by tps desc) over w
      from tpcc_results
      window w as (order by submission_date
        range between unbounded preceding and current row)
    """)


def test_paper_stock_orders_query_parses():
    parse("""
      select price > median(price) over (
        order by placement_time
        range between current row and good_for following)
      from stock_orders
    """)
