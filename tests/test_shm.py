"""Shared-memory arena: roundtrip, ledger accounting, orphan sweep.

The robustness contract of :mod:`repro.parallel.shm` — the process
executor's column transport — mirrors the spill-file discipline: every
segment is pid-tagged, charged to the memory governor under the
``"shm"`` tag, unlinked on close, and cleaned up by the startup sweep
only when its owner is dead (two concurrent sessions must never delete
each other's columns).
"""

import os

import numpy as np
import pytest

from repro.parallel.shm import (
    ARENA_PREFIX,
    SHM_PREFIX,
    ShmArena,
    ShmArraySpec,
    arena_segments,
    attach_array,
    current_shm_bytes,
    owned_segments,
    sweep_orphan_segments,
)
from repro.resilience.memory import MemoryGovernor


def test_share_roundtrips_bit_identical():
    source = np.arange(4096, dtype=np.int64) * 3 - 17
    with ShmArena() as arena:
        spec = arena.share(source)
        assert spec.name.startswith(f"{SHM_PREFIX}p{os.getpid()}-")
        assert spec.nbytes == source.nbytes
        attached, segment = attach_array(spec)
        try:
            assert attached.dtype == source.dtype
            assert np.array_equal(attached, source)
        finally:
            del attached
            segment.close()


def test_create_is_zeroed_and_writable_through_attach():
    with ShmArena() as arena:
        spec = arena.create((64,), np.float64)
        view = arena.view(spec)
        assert not view.any()
        attached, segment = attach_array(spec)
        try:
            attached[7] = 2.5
            # The parent-side view sees the child-side write: one set
            # of pages, not a copy.
            assert view[7] == 2.5
        finally:
            del attached
            segment.close()


def test_close_unlinks_and_leaves_no_owned_segments():
    # Relative to ambient bytes: under REPRO_EXECUTOR=process the
    # default scheduler's session arena legitimately persists.
    ambient = current_shm_bytes()
    arena = ShmArena()
    arena.share(np.ones(128, dtype=np.float64))
    arena.create((32,), np.int64)
    assert len(owned_segments()) >= 2
    assert current_shm_bytes() >= ambient + 128 * 8 + 32 * 8
    arena.close()
    arena.close()  # idempotent
    assert owned_segments() == []
    assert current_shm_bytes() == ambient


def test_governor_ledger_charges_and_refunds_the_shm_tag():
    governor = MemoryGovernor(budget_bytes=10_000_000)
    arena = ShmArena(governor=governor)
    arena.share(np.arange(1000, dtype=np.int64))
    assert governor.stats().by_tag.get("shm", 0) == 8000
    arena.close()
    assert governor.stats().by_tag.get("shm", 0) == 0


def test_sweep_removes_dead_pid_segments_only(tmp_path):
    # A pid far above pid_max never names a live process.
    dead = tmp_path / f"{SHM_PREFIX}p99999999-deadbeef00000000"
    live = tmp_path / f"{SHM_PREFIX}p{os.getpid()}-cafecafe00000000"
    other = tmp_path / "unrelated-file"
    for path in (dead, live, other):
        path.write_bytes(b"x")
    removed = sweep_orphan_segments(str(tmp_path))
    assert removed == 1
    assert not dead.exists()
    # The live-pid segment belongs to a concurrent session: untouched.
    assert live.exists()
    assert other.exists()


def test_sweep_missing_directory_is_a_noop(tmp_path):
    assert sweep_orphan_segments(str(tmp_path / "absent")) == 0


def test_sweep_recognizes_arena_lifetime_segments(tmp_path):
    # Session-lifetime arena segments use their own prefix but the same
    # pid-tagged discipline: dead-owner segments go, live-owner stay.
    dead = tmp_path / f"{ARENA_PREFIX}p99999999-deadbeef00000000"
    live = tmp_path / f"{ARENA_PREFIX}p{os.getpid()}-cafecafe00000000"
    dead.write_bytes(b"x")
    live.write_bytes(b"x")
    assert sweep_orphan_segments(str(tmp_path)) == 1
    assert not dead.exists()
    assert live.exists()


def test_two_sessions_race_neither_sweeps_the_others_arena(tmp_path):
    # The arena outlives queries by design: a concurrent session's
    # startup sweep must not mistake a live session's warm arena for
    # an orphan, in either sweep order.
    mine = tmp_path / f"{ARENA_PREFIX}p{os.getpid()}-aaaaaaaaaaaaaaaa"
    theirs = tmp_path / f"{ARENA_PREFIX}p1-bbbbbbbbbbbbbbbb"  # pid 1
    mine.write_bytes(b"x")
    theirs.write_bytes(b"x")
    assert sweep_orphan_segments(str(tmp_path)) == 0
    assert sweep_orphan_segments(str(tmp_path)) == 0
    assert mine.exists() and theirs.exists()


def test_owned_segments_excludes_the_arena_prefix():
    # Leak checks assert owned_segments() == [] after every query while
    # the arena persists — the two namespaces must stay disjoint.
    from repro.parallel.arena import TableArena

    # Ambient segments (the default scheduler's arena, when an env leg
    # routes the suite through the process executor) persist by design.
    ambient = set(arena_segments())
    with TableArena() as arena:
        lease = arena.lease()
        entry = lease.get(("col", "fp"),
                          lambda: [np.arange(64, dtype=np.int64)])
        assert entry.specs[0].name.startswith(
            f"{ARENA_PREFIX}p{os.getpid()}-")
        assert owned_segments() == []
        assert set(arena_segments()) - ambient == {entry.specs[0].name}
        lease.release()
    assert set(arena_segments()) == ambient


def test_two_sessions_race_neither_sweeps_the_other(tmp_path):
    # Both "sessions" are alive (same pid here; the sweep only checks
    # liveness): each one's startup sweep must keep the other's
    # segments no matter the order.
    a = tmp_path / f"{SHM_PREFIX}p{os.getpid()}-aaaaaaaaaaaaaaaa"
    b = tmp_path / f"{SHM_PREFIX}p1-bbbbbbbbbbbbbbbb"  # pid 1: init, alive
    a.write_bytes(b"x")
    b.write_bytes(b"x")
    assert sweep_orphan_segments(str(tmp_path)) == 0
    assert sweep_orphan_segments(str(tmp_path)) == 0
    assert a.exists() and b.exists()


def test_spec_nbytes_counts_elements():
    assert ShmArraySpec("n", "<i8", (3, 4)).nbytes == 96
    assert ShmArraySpec("n", "<f8", ()).nbytes == 8


def test_shm_attach_fault_site_fires_before_allocation():
    from repro.resilience import ExecutionContext, FaultInjector, activate

    faults = FaultInjector().plan("shm.attach", times=1)
    with activate(ExecutionContext(faults=faults)):
        arena = ShmArena()
        with pytest.raises(OSError):
            arena.share(np.arange(10, dtype=np.int64))
        arena.close()
    # The injected failure allocated nothing: no segment to leak.
    assert faults.fired("shm.attach") == 1
    assert owned_segments() == []
