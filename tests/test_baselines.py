"""Competitor algorithms: naive oracle, incremental, Tableau-style."""

import numpy as np
import pytest

from repro.baselines import (
    IncrementalDistinct,
    incremental_distinct_count,
    incremental_percentile_disc,
    naive_distinct_aggregate,
    naive_distinct_count,
    naive_kth,
    naive_percentile_disc,
    naive_rank,
    tableau_window_percentile,
)
from repro.baselines.incremental import IncrementalDistinctSum
from repro.baselines.naive import naive_dense_rank, naive_percentile_cont


def _sliding(n, width):
    start = np.maximum(np.arange(n) - width, 0)
    end = np.arange(n) + 1
    return start, end


class TestNaive:
    def test_distinct_count_simple(self):
        values = [1, 2, 1, 3]
        keep = [True] * 4
        pieces = [(np.zeros(4, dtype=np.int64),
                   np.arange(1, 5, dtype=np.int64))]
        assert naive_distinct_count(values, keep, pieces) == [1, 2, 2, 3]

    def test_distinct_count_respects_keep(self):
        values = [1, 2, 1]
        keep = [True, False, True]
        pieces = [(np.zeros(3, dtype=np.int64),
                   np.arange(1, 4, dtype=np.int64))]
        assert naive_distinct_count(values, keep, pieces) == [1, 1, 1]

    def test_distinct_aggregate_first_seen_order(self):
        values = [3, 1, 3, 2]
        keep = [True] * 4
        pieces = [(np.zeros(4, dtype=np.int64),
                   np.arange(1, 5, dtype=np.int64))]
        got = naive_distinct_aggregate(values, keep, pieces, list)
        assert got == [[3], [3, 1], [3, 1], [3, 1, 2]]

    def test_percentile_disc(self):
        values = [5.0, 1.0, 3.0]
        keep = [True] * 3
        pieces = [(np.zeros(3, dtype=np.int64),
                   np.arange(1, 4, dtype=np.int64))]
        assert naive_percentile_disc(values, keep, pieces, 0.5) == \
            [5.0, 1.0, 3.0]

    def test_percentile_cont_interpolates(self):
        values = [0.0, 10.0]
        keep = [True] * 2
        pieces = [(np.zeros(2, dtype=np.int64),
                   np.arange(1, 3, dtype=np.int64))]
        got = naive_percentile_cont(values, keep, pieces, 0.5)
        assert got == [0.0, 5.0]

    def test_rank_modes(self):
        keys = [10, 10, 5]
        keep = [True] * 3
        pieces = [(np.zeros(3, dtype=np.int64),
                   np.full(3, 3, dtype=np.int64))]
        assert naive_rank(keys, keep, pieces, "strict") == [2, 2, 1]
        # at_most counts <= (including the row itself), plus one
        assert naive_rank(keys, keep, pieces, "at_most") == [4, 4, 2]

    def test_dense_rank(self):
        keys = [10, 10, 5, 7]
        keep = [True] * 4
        pieces = [(np.zeros(4, dtype=np.int64),
                   np.full(4, 4, dtype=np.int64))]
        assert naive_dense_rank(keys, keep, pieces) == [3, 3, 1, 2]

    def test_kth_none_when_out_of_range(self):
        got = naive_kth([1, 2], ["a", "b"], [True, True],
                        [(np.zeros(2, dtype=np.int64),
                          np.full(2, 2, dtype=np.int64))], [5, 0])
        assert got == [None, "a"]


class TestIncremental:
    def test_distinct_matches_naive(self, rng):
        n = 150
        values = rng.integers(0, 12, size=n).tolist()
        start, end = _sliding(n, 20)
        got = incremental_distinct_count(values, start, end)
        want = naive_distinct_count(values, [True] * n, [(start, end)])
        assert got == want

    def test_distinct_non_monotonic(self, rng):
        n = 100
        values = rng.integers(0, 9, size=n).tolist()
        start = rng.integers(0, n, size=n)
        end = np.minimum(start + rng.integers(0, 30, size=n), n)
        got = incremental_distinct_count(values, start, end)
        for i in range(n):
            assert got[i] == len(set(values[start[i]:end[i]]))

    def test_percentile_matches_naive(self, rng):
        n = 120
        values = rng.normal(size=n).tolist()
        start, end = _sliding(n, 15)
        got = incremental_percentile_disc(values, start, end, 0.75)
        want = naive_percentile_disc(values, [True] * n, [(start, end)],
                                     0.75)
        assert got == want

    def test_percentile_empty_frames(self):
        values = [1.0, 2.0]
        start = np.array([1, 2])
        end = np.array([1, 2])
        assert incremental_percentile_disc(values, start, end, 0.5) == \
            [None, None]

    def test_work_counter_monotonic_vs_random(self, rng):
        n = 200
        values = rng.integers(0, 30, size=n).tolist()
        start, end = _sliding(n, 10)
        smooth = IncrementalDistinct(values)
        for i in range(n):
            smooth.move_to(int(start[i]), int(end[i]))
        jumpy = IncrementalDistinct(values)
        rstart = rng.integers(0, n, size=n)
        rend = np.minimum(rstart + 11, n)
        for i in range(n):
            jumpy.move_to(int(rstart[i]), int(rend[i]))
        assert jumpy.work > smooth.work

    def test_distinct_sum(self, rng):
        values = [3, 3, 5]
        state = IncrementalDistinctSum(values)
        state.move_to(0, 3)
        assert state.total == 8
        state.move_to(0, 2)
        assert state.total == 3
        state.move_to(2, 2)
        assert state.total is None
        assert state.work > 0


class TestTableau:
    def test_matches_sorted_window(self, rng):
        values = rng.integers(0, 40, size=60).tolist()
        got = tableau_window_percentile(values, 0.5, 9)
        for i in range(60):
            window = sorted(values[max(i - 9, 0):i + 1])
            k = max(int(np.ceil(0.5 * len(window))) - 1, 0)
            assert got[i] == window[k]

    def test_following_rows(self):
        values = [3, 1, 2]
        got = tableau_window_percentile(values, 1.0, 0, rows_after=2)
        assert got == [3, 2, 2]

    def test_nones_skipped(self):
        values = [1, None, 3]
        got = tableau_window_percentile(values, 0.5, 2)
        assert got == [1, 1, 1]

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            tableau_window_percentile([1], 1.5, 1)
