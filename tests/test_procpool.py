"""Chaos suite for the supervised process pool (crash isolation).

The acceptance property of the process executor: you can SIGKILL a
worker mid-query and the query still returns the bit-identical answer
— once through morsel retry, twice through quarantine plus the
degraded in-thread path — with the whole episode visible in health
counters and worker stats, surfaced only as typed errors, and with
zero leaked shared-memory segments and zero leaked cache pins.

Worker kills are staged deterministically through the
``REPRO_PROC_CHAOS`` hook (O_EXCL marker files bound the kill count
exactly); supervision faults are injected at the registered
``worker.spawn`` / ``worker.heartbeat`` / ``worker.retry`` /
``shm.attach`` sites.
"""

import numpy as np
import pytest

from repro import Catalog, Session
from repro.cache.store import StructureCache
from repro.errors import WorkerPoolError
from repro.parallel.procpool import _resolve_start_method
from repro.parallel.procworker import CHAOS_ENV
from repro.parallel.scheduler import WindowScheduler, resolve_executor
from repro.parallel.shm import owned_segments
from repro.resilience import ExecutionContext, FaultInjector, activate
from repro.resilience.supervisor import SupervisorPolicy
from repro.sql import SessionConfig
from repro.table import DataType, Table
from repro.window import (
    FrameSpec,
    WindowCall,
    WindowSpec,
    current_row,
    preceding,
    window_query,
)
from repro.window.frame import OrderItem

SPEC = WindowSpec(partition_by=("g",), order_by=(OrderItem("o"),),
                  frame=FrameSpec.rows(preceding(6), current_row()))
CALLS = [
    WindowCall("count", ["x"], distinct=True),
    WindowCall("median", ["y"]),
    WindowCall("rank", order_by=(OrderItem("y"),)),
    WindowCall("sum", ["x"]),
]


def make_table(n_rows: int, n_partitions: int, seed: int) -> Table:
    rng = np.random.default_rng(seed)
    return Table.from_dict({
        "g": (DataType.INT64,
              [int(v) for v in rng.integers(0, n_partitions, n_rows)]),
        "o": (DataType.INT64,
              [int(v) for v in rng.integers(0, 50, n_rows)]),
        "x": (DataType.INT64,
              [int(v) if rng.random() > 0.1 else None
               for v in rng.integers(0, 12, n_rows)]),
        "y": (DataType.FLOAT64,
              [float(v) for v in rng.normal(size=n_rows)]),
    }, name="t")


def forced(workers: int, **overrides) -> WindowScheduler:
    options = dict(workers=workers, executor="process",
                   min_parallel_ops=0.0, min_intra_rows=64,
                   task_size=256)
    options.update(overrides)
    return WindowScheduler(**options)


def run(table, spec=SPEC, scheduler=None, cache=None, ctx=None):
    if ctx is None:
        ctx = ExecutionContext()
    with activate(ctx):
        result = window_query(table, CALLS, spec, cache=cache,
                              parallel=scheduler)
    return [result.columns[i].to_list() for i in range(-len(CALLS), 0)]


# ----------------------------------------------------------------------
# healthy path: process == serial, bit for bit; nothing leaks
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_rows,n_partitions",
                         [(1200, 1), (1200, 8), (1200, 300)])
def test_process_executor_matches_serial_exactly(n_rows, n_partitions):
    table = make_table(n_rows, n_partitions, seed=n_partitions)
    want = run(table)
    with forced(2) as scheduler:
        assert run(table, scheduler=scheduler) == want
        stats = scheduler.stats()
    assert stats.executor == "process"
    assert stats.process_groups >= 1
    assert stats.degraded_groups == 0
    assert owned_segments() == []


def test_null_heavy_and_string_adjacent_results_roundtrip():
    # Lists with NULLs fail the int64/float64 fast path: they must come
    # back through the pickled ack, still bit-identical.
    table = make_table(900, 40, seed=5)
    want = run(table)
    with forced(2) as scheduler:
        assert run(table, scheduler=scheduler) == want


def test_non_numeric_column_degrades_not_fails():
    # A call over a string column is process-ineligible (object dtype
    # cannot ship through shared memory); the group runs on the thread
    # path instead and the decision says why.
    rng = np.random.default_rng(11)
    n = 800
    table = Table.from_dict({
        "g": (DataType.INT64, [int(v) for v in rng.integers(0, 20, n)]),
        "o": (DataType.INT64, [int(v) for v in rng.integers(0, 50, n)]),
        "s": (DataType.STRING,
              [str(v) for v in rng.integers(0, 9, n)]),
    }, name="t")
    calls = [WindowCall("count", ["s"], distinct=True)]
    with activate(ExecutionContext()):
        serial = window_query(table, calls, SPEC)
        with forced(2) as scheduler:
            got = window_query(table, calls, SPEC, parallel=scheduler)
            decision = scheduler.stats().decisions[-1]
            assert scheduler.stats().degraded_groups == 1
    assert got.columns[-1].to_list() == serial.columns[-1].to_list()
    assert "process-ineligible" in decision.reason


# ----------------------------------------------------------------------
# worker kills (the tentpole property)
# ----------------------------------------------------------------------
def test_sigkill_once_retries_and_matches(tmp_path, monkeypatch):
    table = make_table(1500, 60, seed=21)
    want = run(table)
    monkeypatch.setenv(CHAOS_ENV, f"kill:7:1:{tmp_path}")
    ctx = ExecutionContext()
    with forced(2) as scheduler:
        assert run(table, scheduler=scheduler, ctx=ctx) == want
        worker_stats = scheduler.worker_stats()
    assert worker_stats["crashes"] == 1
    assert worker_stats["retries"] == 1
    assert worker_stats["restarts"] == 1
    assert worker_stats["quarantined"] == 0
    assert ctx.health.worker_crashes == 1
    assert ctx.health.morsel_retries == 1
    assert owned_segments() == []


def test_sigkill_twice_quarantines_and_degrades_that_morsel(
        tmp_path, monkeypatch):
    table = make_table(1500, 60, seed=22)
    want = run(table)
    monkeypatch.setenv(CHAOS_ENV, f"kill:7:2:{tmp_path}")
    ctx = ExecutionContext()
    with forced(2) as scheduler:
        assert run(table, scheduler=scheduler, ctx=ctx) == want
        worker_stats = scheduler.worker_stats()
    # Two kills: one retry, then quarantine -> in-thread re-run of just
    # that morsel. The group still counts as a process group.
    assert worker_stats["crashes"] == 2
    assert worker_stats["quarantined"] == 1
    assert ctx.health.morsels_quarantined == 1
    assert scheduler is not None and owned_segments() == []


def test_killed_worker_leaves_no_cache_pins(tmp_path, monkeypatch):
    table = make_table(1200, 50, seed=23)
    want = run(table)
    monkeypatch.setenv(CHAOS_ENV, f"kill:3:2:{tmp_path}")
    with StructureCache(spill_dir=str(tmp_path / "spill")) as cache:
        with forced(2) as scheduler:
            assert run(table, scheduler=scheduler, cache=cache) == want
        assert cache.stats().pinned_entries == 0
    assert owned_segments() == []


# ----------------------------------------------------------------------
# degradation ladder: process -> thread -> serial
# ----------------------------------------------------------------------
def test_spawn_storm_breaks_pool_and_degrades_to_thread():
    table = make_table(1200, 60, seed=31)
    want = run(table)
    faults = FaultInjector().plan("worker.spawn", times=-1)
    ctx = ExecutionContext(faults=faults)
    with forced(2) as scheduler:
        assert run(table, scheduler=scheduler, ctx=ctx) == want
        stats = scheduler.stats()
        worker_stats = scheduler.worker_stats()
        # The session keeps running, but this scheduler never tries the
        # process path again.
        assert not scheduler.process_enabled
    assert stats.degraded_groups == 1
    assert worker_stats["process_broken"]
    assert any("process pool broken" in entry
               for entry in ctx.health.downgrades)
    assert ctx.health.fallbacks >= 1


def test_shm_failure_degrades_group_to_thread():
    table = make_table(1200, 60, seed=32)
    want = run(table)
    faults = FaultInjector().plan("shm.attach", times=1)
    ctx = ExecutionContext(faults=faults)
    with forced(2) as scheduler:
        assert run(table, scheduler=scheduler, ctx=ctx) == want
        assert scheduler.stats().degraded_groups == 1
        # One bad allocation is not a broken pool: the next query may
        # try the process path again.
        assert scheduler.process_enabled
    assert any("shared-memory setup failed" in entry
               for entry in ctx.health.downgrades)
    assert owned_segments() == []


def test_heartbeat_loss_is_treated_as_a_crash_and_retried(
        tmp_path, monkeypatch):
    table = make_table(1200, 60, seed=33)
    want = run(table)
    faults = FaultInjector().plan("worker.heartbeat", times=1)
    ctx = ExecutionContext(faults=faults)
    with forced(2) as scheduler:
        assert run(table, scheduler=scheduler, ctx=ctx) == want
        worker_stats = scheduler.worker_stats()
    assert worker_stats["crashes"] >= 1
    assert ctx.health.worker_crashes >= 1


def test_retry_fault_quarantines_instead(tmp_path, monkeypatch):
    table = make_table(1200, 60, seed=34)
    want = run(table)
    monkeypatch.setenv(CHAOS_ENV, f"kill:7:1:{tmp_path}")
    faults = FaultInjector().plan("worker.retry", times=-1)
    ctx = ExecutionContext(faults=faults)
    with forced(2) as scheduler:
        assert run(table, scheduler=scheduler, ctx=ctx) == want
        worker_stats = scheduler.worker_stats()
    # The single kill would normally retry; the injected retry fault
    # forces the quarantine path instead — result still identical.
    assert worker_stats["retries"] == 0
    assert worker_stats["quarantined"] == 1


def test_closed_pool_raises_typed_worker_pool_error():
    from repro.parallel.procpool import ProcessPool

    pool = ProcessPool(1, policy=SupervisorPolicy(max_restarts=0))
    pool.close()
    with pytest.raises(WorkerPoolError):
        pool.run_group(None, [])
    pool.close()  # idempotent


# ----------------------------------------------------------------------
# executor selection and configuration
# ----------------------------------------------------------------------
def test_resolve_executor_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
    assert resolve_executor(None) == "thread"
    assert resolve_executor("process") == "process"
    monkeypatch.setenv("REPRO_EXECUTOR", "process")
    assert resolve_executor(None) == "process"
    assert resolve_executor("serial") == "serial"  # arg wins
    monkeypatch.setenv("REPRO_EXECUTOR", "bogus")
    assert resolve_executor(None) == "thread"  # lenient env fallback


def test_executor_serial_forces_serial_decisions():
    table = make_table(1200, 60, seed=41)
    want = run(table)
    with forced(4, executor="serial") as scheduler:
        assert run(table, scheduler=scheduler) == want
        decision = scheduler.stats().decisions[-1]
    assert decision.strategy == "serial"
    assert "executor=serial" in decision.reason


def test_resolve_start_method_fallbacks(monkeypatch):
    monkeypatch.delenv("REPRO_PROC_START", raising=False)
    assert _resolve_start_method("nonsense") in ("fork", "spawn")
    monkeypatch.setenv("REPRO_PROC_START", "spawn")
    assert _resolve_start_method(None) == "spawn"


def test_session_config_executor_validation():
    from repro.errors import ConfigurationError

    assert SessionConfig(executor="process").executor == "process"
    assert SessionConfig().executor is None
    with pytest.raises(ConfigurationError):
        SessionConfig(executor="gpu")
    config = SessionConfig.from_env(env={"REPRO_EXECUTOR": "Process"})
    assert config.executor == "process"
    assert SessionConfig.from_env(env={}).executor is None


# ----------------------------------------------------------------------
# session integration: SQL, EXPLAIN, health
# ----------------------------------------------------------------------
SQL = """
select g, count(distinct x) over w as v, median(y) over w as m
from t
window w as (partition by g order by o
             rows between 6 preceding and current row)
"""


def test_session_process_executor_end_to_end():
    catalog = Catalog({"t": make_table(1500, 60, seed=51)})
    with Session(catalog) as serial_session:
        want = serial_session.execute(SQL)
    config = SessionConfig(workers=2, executor="process")
    with Session(catalog, config=config) as session:
        session.parallel = forced(2)
        try:
            got = session.execute(SQL)
            for name in ("v", "m"):
                assert got.column(name).to_list() == \
                    want.column(name).to_list()
            text = session.explain(SQL, analyze=True)
            worker_stats = session.parallel.worker_stats()
        finally:
            session.parallel.close()
    assert "executor=process" in text
    assert "worker pool:" in text
    assert worker_stats["executor"] == "process"
    assert worker_stats["live"] == 2
    assert len(worker_stats["pids"]) == 2
    assert owned_segments() == []


# ----------------------------------------------------------------------
# table arena: warm repeats, trace discipline, read-only views
# ----------------------------------------------------------------------
FAMILY_CALLS = CALLS + [WindowCall("lead", ("y",)),
                        WindowCall("first_value", ("x",))]


def run_calls(table, calls, scheduler=None, cache=None, ctx=None):
    if ctx is None:
        ctx = ExecutionContext()
    with activate(ctx):
        result = window_query(table, calls, SPEC, cache=cache,
                              parallel=scheduler)
    return [result.columns[i].to_list() for i in range(-len(calls), 0)]


def test_warm_repeat_bit_identical_across_evaluator_families():
    # Five evaluator families — count distinct, median (select probes),
    # rank, sum (aggregate probes), lead/first_value (navigation) —
    # must match serial on the cold run AND on warm runs that reuse
    # arena-resident columns and permutations.
    from repro.parallel.shm import arena_segments

    table = make_table(1500, 8, seed=61)
    want = run_calls(table, FAMILY_CALLS)
    # Under REPRO_EXECUTOR=process the serial-baseline queries above go
    # through the (never-closed) default scheduler, whose session arena
    # legitimately persists — judge this scheduler's hygiene relative
    # to that ambient set.
    ambient = set(arena_segments())
    with forced(2) as scheduler:
        for _ in range(3):
            assert run_calls(table, FAMILY_CALLS,
                             scheduler=scheduler) == want
        arena = scheduler.arena_stats()
        assert scheduler.stats().degraded_groups == 0
    assert arena is not None and arena.misses > 0
    # Runs 2 and 3 attached instead of copying.
    assert arena.hits >= arena.misses
    assert owned_segments() == []
    assert set(arena_segments()) == ambient  # close() unlinked the arena


def test_warm_query_trace_has_no_copy_spans():
    from repro.obs import Tracer
    from repro.resilience.context import SimulatedClock

    table = make_table(1500, 8, seed=62)
    with forced(2) as scheduler:
        cold_tracer = Tracer(clock=SimulatedClock())
        run_calls(table, CALLS, scheduler=scheduler,
                  ctx=ExecutionContext(tracer=cold_tracer))
        cold = cold_tracer.finish().find_all("shm.copy")
        assert cold  # the cold run materialized arena entries
        assert {s.attrs["kind"] for s in cold} >= {"order", "col"}
        warm_tracer = Tracer(clock=SimulatedClock())
        run_calls(table, CALLS, scheduler=scheduler,
                  ctx=ExecutionContext(tracer=warm_tracer))
        # The whole point of the arena: the warm run's trace shows no
        # copy phase at all.
        assert warm_tracer.finish().find_all("shm.copy") == []


def test_intra_probe_fan_shares_levels_through_the_arena():
    # Single dominant partition: structures build once on the query
    # thread, tree levels serialize into the arena, probe batches fan
    # to workers. With a structure cache the repeat query reuses the
    # same tree — and its workers attach the levels zero-copy.
    table = make_table(1200, 1, seed=63)
    want = run(table)
    with StructureCache() as cache:
        with forced(2) as scheduler:
            assert run(table, scheduler=scheduler, cache=cache) == want
            assert run(table, scheduler=scheduler, cache=cache) == want
            stats = scheduler.stats()
            arena = scheduler.arena_stats()
            kinds = {key[0]
                     for key in scheduler.table_arena()._entries}
    assert stats.intra_groups == 2
    assert stats.process_groups == 2
    assert stats.degraded_groups == 0
    assert "levels" in kinds and "order" in kinds
    assert arena.hits >= 1
    assert owned_segments() == []


def test_probe_fan_sigkill_once_retries_and_matches(
        tmp_path, monkeypatch):
    table = make_table(1200, 1, seed=64)
    want = run(table)
    monkeypatch.setenv(CHAOS_ENV, f"kill:0:1:{tmp_path}")
    ctx = ExecutionContext()
    with forced(2) as scheduler:
        assert run(table, scheduler=scheduler, ctx=ctx) == want
        worker_stats = scheduler.worker_stats()
        stats = scheduler.stats()
    assert worker_stats["crashes"] == 1
    assert worker_stats["retries"] == 1
    assert stats.process_groups >= 1
    assert stats.degraded_groups == 0
    assert owned_segments() == []


def test_probe_fan_sigkill_twice_quarantines_and_matches(
        tmp_path, monkeypatch):
    # Two kills on the same probe range: quarantine, then the parent
    # recomputes exactly that range serially — still bit-identical.
    table = make_table(1200, 1, seed=65)
    want = run(table)
    monkeypatch.setenv(CHAOS_ENV, f"kill:0:2:{tmp_path}")
    ctx = ExecutionContext()
    with forced(2) as scheduler:
        assert run(table, scheduler=scheduler, ctx=ctx) == want
        worker_stats = scheduler.worker_stats()
    assert worker_stats["crashes"] == 2
    assert worker_stats["quarantined"] >= 1
    assert owned_segments() == []


def test_worker_probe_input_views_are_read_only():
    # The regression the shared tree demands: arena pages are mapped
    # into every worker, so a mutating kernel must raise, not corrupt
    # sibling workers' inputs.
    from repro.parallel.procworker import (
        LevelsHandle,
        ProcProbeJob,
        _ProbeState,
    )
    from repro.parallel.shm import ShmArena

    with ShmArena() as arena:
        in_spec = arena.share(np.arange(128, dtype=np.int64))
        out_spec = arena.create((128,), np.int64)
        handle = LevelsHandle(token="t0", fanout=16, sample_every=8,
                              keys=(), bridges=(), agg_prefix=())
        job = ProcProbeJob(probe_id="p0", op="count", levels=handle,
                           inputs=(("lo", in_spec),),
                           outputs=(out_spec,))
        state = _ProbeState(job)
        try:
            assert state.inputs["lo"].flags.writeable is False
            with pytest.raises(ValueError):
                state.inputs["lo"][0] = 99
            state.outputs[0][0] = 7  # outputs must stay writable
        finally:
            state.close()


def test_mp_start_env_alias(monkeypatch):
    monkeypatch.delenv("REPRO_PROC_START", raising=False)
    monkeypatch.setenv("REPRO_MP_START", "spawn")
    assert _resolve_start_method(None) == "spawn"
    monkeypatch.setenv("REPRO_PROC_START", "fork")  # primary wins
    assert _resolve_start_method(None) == "fork"


def test_spawn_start_method_roundtrip(monkeypatch):
    monkeypatch.delenv("REPRO_PROC_START", raising=False)
    monkeypatch.setenv("REPRO_MP_START", "spawn")
    table = make_table(1200, 8, seed=66)
    want = run(table)
    with forced(2) as scheduler:
        assert run(table, scheduler=scheduler) == want
        assert scheduler.stats().process_groups >= 1
    assert owned_segments() == []


def test_session_survives_kill_storm_with_typed_errors_only(
        tmp_path, monkeypatch):
    # The CI chaos matrix property, session-level: kills mid-query may
    # only ever surface as correct results (after retry) — never a
    # wrong row, never an untyped error, never a leaked segment.
    catalog = Catalog({"t": make_table(1500, 60, seed=52)})
    with Session(catalog) as serial_session:
        want = serial_session.execute(SQL).column("v").to_list()
    monkeypatch.setenv(CHAOS_ENV, f"kill:7:3:{tmp_path}")
    config = SessionConfig(workers=2, executor="process")
    with Session(catalog, config=config) as session:
        session.parallel = forced(2)
        try:
            for _ in range(3):
                got = session.execute(SQL).column("v").to_list()
                assert got == want
            health = session.health_stats()
        finally:
            session.parallel.close()
    assert health.worker_crashes == 3
    assert owned_segments() == []
