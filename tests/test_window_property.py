"""Hypothesis property suite: MST equals the oracle on random inputs.

Random tables (with NULLs and heavy duplicates), random frame
specifications (mode, bounds, exclusion) and random functions — the
merge-sort-tree evaluation must match the brute-force oracle exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import assert_columns_equal
from repro.table import DataType, Table
from repro.window import (
    FrameExclusion,
    FrameSpec,
    WindowCall,
    WindowSpec,
    current_row,
    following,
    preceding,
    unbounded_following,
    unbounded_preceding,
    window_query,
)
from repro.window.frame import FrameMode, OrderItem


@st.composite
def tables(draw):
    n = draw(st.integers(1, 40))
    rng = np.random.default_rng(draw(st.integers(0, 2 ** 31)))
    xs = [int(v) if rng.random() > 0.15 else None
          for v in rng.integers(0, 6, n)]
    return Table.from_dict({
        "g": (DataType.INT64, [int(v) for v in rng.integers(0, 2, n)]),
        "o": (DataType.INT64, [int(v) for v in rng.integers(0, 12, n)]),
        "x": (DataType.INT64, xs),
        "y": (DataType.FLOAT64,
              [float(v) for v in rng.integers(0, 8, n)]),
    })


@st.composite
def frame_specs(draw):
    mode = draw(st.sampled_from([FrameMode.ROWS, FrameMode.RANGE,
                                 FrameMode.GROUPS]))
    bound_kinds = st.sampled_from(["unbounded", "offset", "current"])

    def bound(kind, is_start):
        if kind == "unbounded":
            return unbounded_preceding() if is_start \
                else unbounded_following()
        if kind == "current":
            return current_row()
        offset = draw(st.integers(0, 10))
        if is_start:
            return draw(st.sampled_from([preceding(offset),
                                         following(offset)]))
        return draw(st.sampled_from([preceding(offset),
                                     following(offset)]))

    start = bound(draw(bound_kinds), True)
    end = bound(draw(bound_kinds), False)
    exclusion = draw(st.sampled_from(list(FrameExclusion)))
    try:
        return FrameSpec(mode, start, end, exclusion)
    except Exception:
        return FrameSpec(mode, unbounded_preceding(), current_row(),
                         exclusion)


CALL_FACTORIES = [
    lambda: dict(function="count", args=("x",), distinct=True),
    lambda: dict(function="sum", args=("x",), distinct=True),
    lambda: dict(function="avg", args=("x",), distinct=True),
    lambda: dict(function="rank", order_by=(OrderItem("y"),)),
    lambda: dict(function="dense_rank", order_by=(OrderItem("y"),)),
    lambda: dict(function="row_number", order_by=(OrderItem("y"),)),
    lambda: dict(function="cume_dist", order_by=(OrderItem("y"),)),
    lambda: dict(function="percentile_disc", args=("y",), fraction=0.5),
    lambda: dict(function="percentile_cont", args=("y",), fraction=0.75),
    lambda: dict(function="first_value", args=("x",),
                 order_by=(OrderItem("y"),)),
    lambda: dict(function="last_value", args=("y",)),
    lambda: dict(function="nth_value", args=("y",), nth=2),
    lambda: dict(function="lead", args=("y",),
                 order_by=(OrderItem("y"),)),
    lambda: dict(function="lag", args=("x",), default=-1),
]


@given(table=tables(), frame=frame_specs(),
       call_index=st.integers(0, len(CALL_FACTORIES) - 1),
       partitioned=st.booleans())
@settings(max_examples=250, deadline=None)
def test_mst_equals_oracle(table, frame, call_index, partitioned):
    spec = WindowSpec(
        partition_by=("g",) if partitioned else (),
        order_by=(OrderItem("o"),),
        frame=frame)
    kwargs = CALL_FACTORIES[call_index]()
    got = window_query(table, [WindowCall(**{**kwargs,
                                             "algorithm": "mst"})],
                       spec).columns[-1].to_list()
    want = window_query(table, [WindowCall(**{**kwargs,
                                              "algorithm": "naive"})],
                        spec).columns[-1].to_list()
    assert_columns_equal(got, want)


@given(table=tables(), seed=st.integers(0, 9999),
       call_index=st.integers(0, len(CALL_FACTORIES) - 1))
@settings(max_examples=120, deadline=None)
def test_mst_equals_oracle_random_offsets(table, seed, call_index):
    """Per-row (non-monotonic) ROWS offsets."""
    rng = np.random.default_rng(seed)
    n = table.num_rows
    spec = WindowSpec(
        order_by=(OrderItem("o"),),
        frame=FrameSpec.rows(preceding(rng.integers(0, 8, size=n)),
                             following(rng.integers(0, 8, size=n))))
    kwargs = CALL_FACTORIES[call_index]()
    got = window_query(table, [WindowCall(**{**kwargs,
                                             "algorithm": "mst"})],
                       spec).columns[-1].to_list()
    want = window_query(table, [WindowCall(**{**kwargs,
                                              "algorithm": "naive"})],
                        spec).columns[-1].to_list()
    assert_columns_equal(got, want)
