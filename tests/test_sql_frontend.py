"""Relational frontend: negative parses, prepared statements,
catalog introspection.

The happy paths live in the TPC-H golden suite
(``test_tpch_queries.py``); this file pins the frontend's *error*
contract — what gets rejected, with which exception type, and that the
messages say something actionable — plus the new Session surface
(``prepare``/``tables``/``describe``).
"""

import datetime

import pytest

from repro.errors import (
    ConfigurationError,
    ParameterBindingError,
    SqlAnalysisError,
    SqlSyntaxError,
)
from repro.sql import Catalog, Session
from repro.table import DataType, Table


def _catalog():
    t = Table.from_dict({
        "a": (DataType.INT64, [1, 2, 3, 4]),
        "b": (DataType.STRING, ["x", "y", "x", "z"]),
        "d": (DataType.DATE, [datetime.date(2024, 1, i + 1)
                              for i in range(4)]),
    })
    w = Table.from_dict({
        "a": (DataType.INT64, [2, 3, 5]),
        "v": (DataType.FLOAT64, [0.5, 1.5, 2.5]),
    })
    return Catalog({"t": t, "w": w})


@pytest.fixture()
def session():
    session = Session(_catalog())
    yield session
    session.close()


class TestNegativeParses:
    def test_unclosed_cte_body(self, session):
        with pytest.raises(SqlSyntaxError):
            session.execute("WITH c AS (SELECT a FROM t SELECT * FROM c")

    def test_cte_missing_as(self, session):
        with pytest.raises(SqlSyntaxError):
            session.execute("WITH c (SELECT a FROM t) SELECT * FROM c")

    def test_join_without_on(self, session):
        with pytest.raises(SqlSyntaxError):
            session.execute("SELECT * FROM t JOIN w WHERE t.a = w.a")

    def test_ambiguous_column_across_join(self, session):
        with pytest.raises(SqlAnalysisError, match="ambiguous"):
            session.execute(
                "SELECT a FROM t JOIN w ON t.a = w.a")

    def test_unknown_alias_qualifier(self, session):
        with pytest.raises(SqlAnalysisError):
            session.execute(
                "SELECT z.a FROM t AS x JOIN w AS y ON x.a = y.a")

    def test_correlated_in_subquery_rejected(self, session):
        with pytest.raises(SqlAnalysisError,
                           match="correlated IN subqueries"):
            session.execute(
                "SELECT a FROM t WHERE a IN "
                "(SELECT w.a FROM w WHERE w.v > t.a)")

    def test_correlated_in_suggests_rewrite(self, session):
        with pytest.raises(SqlAnalysisError, match="join or EXISTS"):
            session.execute(
                "SELECT a FROM t WHERE a IN "
                "(SELECT w.a FROM w WHERE w.v > t.a)")

    def test_in_subquery_must_be_single_column(self, session):
        with pytest.raises(SqlAnalysisError, match="one column"):
            session.execute(
                "SELECT a FROM t WHERE a IN (SELECT a, v FROM w)")


class TestPreparedStatements:
    def test_positional_roundtrip_and_cache(self, session):
        stmt = session.prepare(
            "SELECT a FROM t WHERE a > $1 ORDER BY a")
        assert stmt.parameter_keys == [1]
        assert stmt.execute([2]).to_rows() == [(3,), (4,)]
        assert stmt.execute([3]).to_rows() == [(4,)]

    def test_named_parameters(self, session):
        stmt = session.prepare("SELECT a FROM t WHERE b = :want")
        assert stmt.parameter_keys == ["want"]
        assert stmt.execute({"want": "x"}).to_rows() == [(1,), (3,)]

    def test_date_parameter_accepts_iso_string(self, session):
        stmt = session.prepare("SELECT a FROM t WHERE d >= $1")
        assert stmt.execute(["2024-01-03"]).to_rows() == [(3,), (4,)]
        assert stmt.execute(
            [datetime.date(2024, 1, 4)]).to_rows() == [(4,)]

    def test_arity_mismatch(self, session):
        stmt = session.prepare("SELECT a FROM t WHERE a > $1")
        with pytest.raises(ParameterBindingError, match="1 parameter"):
            stmt.execute([1, 2])

    def test_type_mismatch_names_the_slot(self, session):
        stmt = session.prepare("SELECT a FROM t WHERE a > $1")
        with pytest.raises(ParameterBindingError, match=r"\$1"):
            stmt.execute(["three"])

    def test_missing_named_parameter(self, session):
        stmt = session.prepare(
            "SELECT a FROM t WHERE b = :x AND a > :y")
        with pytest.raises(ParameterBindingError, match=":y"):
            stmt.execute({"x": "x"})

    def test_positional_params_need_a_sequence(self, session):
        stmt = session.prepare("SELECT a FROM t WHERE a > $1")
        with pytest.raises(ParameterBindingError):
            stmt.execute({"1": 3})

    def test_mixing_positional_and_named_rejected(self, session):
        with pytest.raises(ParameterBindingError, match="mix"):
            session.prepare("SELECT a FROM t WHERE a > $1 AND b = :x")

    def test_gapped_positional_rejected(self, session):
        with pytest.raises(ParameterBindingError):
            session.prepare("SELECT a FROM t WHERE a > $2")

    def test_unbound_parameter_in_plain_execute(self, session):
        with pytest.raises(ParameterBindingError, match="unbound"):
            session.execute("SELECT a FROM t WHERE a > $1")

    def test_prepare_requires_string(self, session):
        with pytest.raises(ConfigurationError):
            session.prepare(42)

    def test_null_binds_any_slot(self, session):
        stmt = session.prepare("SELECT a FROM t WHERE a > $1")
        assert stmt.execute([None]).to_rows() == []


class TestIntrospection:
    def test_tables_are_sorted_schemas(self, session):
        schemas = session.tables()
        assert [s.name for s in schemas] == ["t", "w"]
        assert schemas[0].row_count == 4

    def test_describe_columns(self, session):
        schema = session.describe("w")
        assert [(c.name, c.dtype) for c in schema.columns] == [
            ("a", "int64"), ("v", "float64")]

    def test_describe_unknown_table(self, session):
        with pytest.raises(SqlAnalysisError):
            session.describe("nope")

    def test_schema_to_dict_is_json_shaped(self, session):
        out = session.describe("t").to_dict()
        assert out["name"] == "t"
        assert out["columns"][0] == {"name": "a", "dtype": "int64"}
