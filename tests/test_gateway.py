"""Admission control: slots, priority queues, shedding, queue guardrails.

The gateway is the session's front door; these tests pin down its
contract: ``max_concurrent`` truly bounds simultaneous execution,
``interactive`` strictly outranks ``batch`` for freed slots, arrivals
beyond ``max_queue`` shed immediately with a typed
:class:`~repro.errors.QueryRejectedError`, and a queued query's own
guardrails (deadline, cancellation token, bounded queue wait) fire
*while waiting* — a query that never ran still leaves telemetry.
"""

import threading
import time

import pytest

from conftest import make_window_table
from repro import Catalog, Session
from repro.errors import (
    QueryCancelledError,
    QueryRejectedError,
    QueryTimeoutError,
)
from repro.resilience import (
    CancellationToken,
    ExecutionContext,
    FaultInjector,
    SimulatedClock,
)
from repro.resilience.gateway import QueryGateway


class AdvancingClock(SimulatedClock):
    """Advances on every read, so queue waits expire without real time."""

    def __init__(self, step=1.0):
        super().__init__()
        self._step = step

    def monotonic(self):
        value = super().monotonic()
        self.advance(self._step)
        return value


def _start(target):
    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread


# ----------------------------------------------------------------------
# basics
# ----------------------------------------------------------------------
def test_free_slot_admits_immediately():
    gateway = QueryGateway(max_concurrent=2)
    with gateway.admit():
        with gateway.admit():
            stats = gateway.stats()
            assert stats.active == 2
            assert stats.queue_waits == 0
    stats = gateway.stats()
    assert stats.active == 0
    assert stats.admitted == 2
    assert stats.completed == 2
    assert stats.peak_active == 2


def test_unknown_priority_rejected():
    gateway = QueryGateway()
    with pytest.raises(ValueError):
        with gateway.admit(priority="background"):
            pass


def test_ctor_validation():
    with pytest.raises(ValueError):
        QueryGateway(max_concurrent=0)
    with pytest.raises(ValueError):
        QueryGateway(max_queue=-1)


def test_max_concurrent_bounds_parallel_execution():
    gateway = QueryGateway(max_concurrent=2, max_queue=16)
    active = []
    peak = []
    lock = threading.Lock()
    barrier = threading.Barrier(6)

    def run():
        barrier.wait()
        with gateway.admit():
            with lock:
                active.append(1)
                peak.append(len(active))
            time.sleep(0.02)
            with lock:
                active.pop()

    threads = [_start(run) for _ in range(6)]
    for thread in threads:
        thread.join(timeout=10)
    assert max(peak) <= 2
    stats = gateway.stats()
    assert stats.admitted == 6
    assert stats.queue_waits >= 4
    assert stats.peak_active <= 2


def test_interactive_strictly_outranks_batch():
    gateway = QueryGateway(max_concurrent=1, max_queue=16)
    order = []
    release = threading.Event()
    occupant_in = threading.Event()

    def occupant():
        with gateway.admit():
            occupant_in.set()
            release.wait(timeout=10)

    def waiter(priority, name):
        with gateway.admit(priority=priority):
            order.append(name)

    occ = _start(occupant)
    occupant_in.wait(timeout=10)
    # Batch queues first, interactive afterwards — interactive must
    # still win the freed slot.
    batch = _start(lambda: waiter("batch", "batch"))
    while not gateway.stats().queued_now.get("batch"):
        time.sleep(0.001)
    interactive = _start(lambda: waiter("interactive", "interactive"))
    while not gateway.stats().queued_now.get("interactive"):
        time.sleep(0.001)
    release.set()
    for thread in (occ, batch, interactive):
        thread.join(timeout=10)
    assert order == ["interactive", "batch"]


# ----------------------------------------------------------------------
# shedding
# ----------------------------------------------------------------------
def test_full_queue_sheds_with_typed_error():
    gateway = QueryGateway(max_concurrent=1, max_queue=0)
    occupant_in = threading.Event()
    release = threading.Event()

    def occupant():
        with gateway.admit():
            occupant_in.set()
            release.wait(timeout=10)

    thread = _start(occupant)
    occupant_in.wait(timeout=10)
    ctx = ExecutionContext()
    with pytest.raises(QueryRejectedError) as info:
        with gateway.admit(ctx, priority="batch"):
            pass
    assert info.value.priority == "batch"
    assert ctx.health.shed == 1
    stats = gateway.stats()
    assert stats.shed == 1
    assert stats.shed_by_class == {"batch": 1}
    release.set()
    thread.join(timeout=10)
    # The slot freed: a new arrival is admitted normally.
    with gateway.admit():
        pass


def test_zero_queue_with_free_slot_still_admits():
    gateway = QueryGateway(max_concurrent=1, max_queue=0)
    with gateway.admit():
        pass
    assert gateway.stats().shed == 0


def test_queue_timeout_sheds_on_the_gateway_clock():
    clock = AdvancingClock(step=1.0)
    gateway = QueryGateway(max_concurrent=1, max_queue=4,
                           queue_timeout=5.0, clock=clock)
    occupant_in = threading.Event()
    release = threading.Event()

    def occupant():
        with gateway.admit():
            occupant_in.set()
            release.wait(timeout=10)

    thread = _start(occupant)
    occupant_in.wait(timeout=10)
    ctx = ExecutionContext()
    with pytest.raises(QueryRejectedError) as info:
        with gateway.admit(ctx):
            pass
    assert "queue_timeout" in str(info.value)
    stats = gateway.stats()
    assert stats.queue_timeouts == 1
    assert stats.shed == 1
    assert ctx.health.shed == 1
    release.set()
    thread.join(timeout=10)


# ----------------------------------------------------------------------
# guardrails while queued
# ----------------------------------------------------------------------
def test_deadline_expires_while_queued():
    clock = AdvancingClock(step=1.0)
    gateway = QueryGateway(max_concurrent=1, clock=clock)
    occupant_in = threading.Event()
    release = threading.Event()

    def occupant():
        with gateway.admit():
            occupant_in.set()
            release.wait(timeout=10)

    thread = _start(occupant)
    occupant_in.wait(timeout=10)
    ctx = ExecutionContext(timeout=3.0, clock=clock)
    with pytest.raises(QueryTimeoutError):
        with gateway.admit(ctx):
            pass
    assert ctx.health.timeouts == 1
    assert gateway.stats().queue_deadline_expiries == 1
    release.set()
    thread.join(timeout=10)
    # The dead waiter left the queue; the gateway still works.
    with gateway.admit():
        assert gateway.stats().active == 1


def test_cancellation_while_queued_records_and_unblocks():
    gateway = QueryGateway(max_concurrent=1)
    occupant_in = threading.Event()
    release = threading.Event()
    token = CancellationToken()
    ctx = ExecutionContext(token=token)
    outcome = []

    def occupant():
        with gateway.admit():
            occupant_in.set()
            release.wait(timeout=10)

    def cancelled_waiter():
        try:
            with gateway.admit(ctx):
                outcome.append("ran")
        except QueryCancelledError:
            outcome.append("cancelled")

    occ = _start(occupant)
    occupant_in.wait(timeout=10)
    waiter = _start(cancelled_waiter)
    while not gateway.stats().queued_now.get("interactive"):
        time.sleep(0.001)
    token.cancel()
    waiter.join(timeout=10)
    assert outcome == ["cancelled"]
    assert ctx.health.cancellations == 1
    stats = gateway.stats()
    assert stats.queue_cancellations == 1
    assert stats.queued_now.get("interactive", 0) == 0
    release.set()
    occ.join(timeout=10)
    # The abandoned ticket must not wedge later admissions.
    with gateway.admit():
        pass


def test_gateway_admit_fault_site_fires():
    faults = FaultInjector().plan("gateway.admit", times=1)
    gateway = QueryGateway()
    ctx = ExecutionContext(faults=faults)
    with pytest.raises(RuntimeError):
        with gateway.admit(ctx):
            pass
    assert faults.fired("gateway.admit") == 1
    assert ctx.health.faults == 1
    # The failed admission held no slot.
    assert gateway.stats().active == 0
    with gateway.admit(ctx):
        pass


# ----------------------------------------------------------------------
# session integration
# ----------------------------------------------------------------------
SQL = """
    select g, count(distinct x) over w as uniq
    from t
    window w as (partition by g order by o
                 rows between 10 preceding and current row)
"""


def test_session_routes_queries_through_the_gateway():
    catalog = Catalog({"t": make_window_table(120)})
    with Session(catalog, max_concurrent=2) as session:
        session.execute(SQL)
        session.execute(SQL, priority="batch")
        stats = session.gateway.stats()
        assert stats.admitted == 2
        assert stats.admitted_by_class == {"interactive": 1, "batch": 1}
        assert session.health_stats().admitted == 2
        text = session.explain(SQL)
        assert "Gateway" in text
        assert "slots=2" in text
        # Healthy run: admission is visible, Resilience stays quiet.
        assert "Resilience" not in text


def test_session_sheds_when_saturated():
    catalog = Catalog({"t": make_window_table(120)})
    with Session(catalog, max_concurrent=1, max_queue=0) as session:
        occupant_in = threading.Event()
        release = threading.Event()

        def occupant():
            with session.gateway.admit(ExecutionContext()):
                occupant_in.set()
                release.wait(timeout=10)

        thread = _start(occupant)
        occupant_in.wait(timeout=10)
        with pytest.raises(QueryRejectedError):
            session.execute(SQL)
        assert session.health_stats().shed == 1
        release.set()
        thread.join(timeout=10)
        # After the slot frees, the same session serves normally.
        session.execute(SQL)
        assert "shed=1" in session.explain(SQL)


def test_concurrent_sessions_all_complete():
    catalog = Catalog({"t": make_window_table(200)})
    with Session(catalog, max_concurrent=2, max_queue=16) as session:
        expected = session.execute(SQL).column("uniq").to_list()
        errors = []
        results = []
        lock = threading.Lock()

        def run(priority):
            try:
                table = session.execute(SQL, priority=priority)
                with lock:
                    results.append(table.column("uniq").to_list())
            except Exception as exc:  # pragma: no cover - failure path
                with lock:
                    errors.append(exc)

        threads = [_start(lambda p=p: run(p))
                   for p in ["interactive", "batch"] * 4]
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(results) == 8
        for values in results:
            assert values == expected
        assert session.gateway.stats().admitted == 9
