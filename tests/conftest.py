"""Shared test fixtures."""

import numpy as np
import pytest

from repro.table import DataType, Table


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def make_window_table(n: int = 120, seed: int = 42,
                      null_fraction: float = 0.1) -> Table:
    """A small mixed table exercised by the window-function tests."""
    rng = np.random.default_rng(seed)
    xs = [int(v) if rng.random() > null_fraction else None
          for v in rng.integers(0, 15, n)]
    return Table.from_dict({
        "g": (DataType.INT64, [int(v) for v in rng.integers(0, 3, n)]),
        "o": (DataType.INT64, [int(v) for v in rng.integers(0, 40, n)]),
        "x": (DataType.INT64, xs),
        "y": (DataType.FLOAT64, [float(v) for v in rng.normal(size=n)]),
        "flag": (DataType.BOOL, [bool(v) for v in rng.integers(0, 2, n)]),
    }, name="t")


@pytest.fixture
def window_table():
    return make_window_table()


def assert_columns_equal(a, b, tolerance=1e-9):
    """Compare two result column value lists with float tolerance."""
    assert len(a) == len(b), f"length mismatch: {len(a)} vs {len(b)}"
    for i, (u, v) in enumerate(zip(a, b)):
        if isinstance(u, float) and isinstance(v, float):
            assert abs(u - v) < tolerance, (i, u, v)
        else:
            assert u == v, (i, u, v)
