"""Every SQL query the paper prints, executed end to end.

Each query from the paper's text runs through the SQL engine and is
validated column by column against an independent evaluation (naive
oracle through the operator API, or a direct recomputation).
"""

import numpy as np
import pytest

from conftest import assert_columns_equal
from repro.sql import Catalog, execute, explain
from repro.table import DataType, Table
from repro.tpch import lineitem, orders, tpcc_results
from repro.window import (
    FrameSpec,
    WindowCall,
    WindowSpec,
    current_row,
    preceding,
    unbounded_preceding,
    window_query,
)
from repro.window.frame import OrderItem


@pytest.fixture(scope="module")
def catalogs():
    return {
        "lineitem": lineitem(1_500, seed=3),
        "orders": orders(800, seed=4),
        "tpcc_results": tpcc_results(90, seed=5),
    }


def _oracle(table, call_kwargs, spec):
    return window_query(
        table, [WindowCall(**{**call_kwargs, "algorithm": "naive"})],
        spec).columns[-1].to_list()


class TestSection1:
    def test_monthly_active_users(self, catalogs):
        """count(distinct o_custkey) over a 1-month RANGE frame."""
        catalog = Catalog(catalogs)
        out = execute("""
            select o_orderdate, count(distinct o_custkey) over w as mau
            from orders
            window w as (order by o_orderdate
              range between interval '1 month' preceding and current row)
            order by o_orderdate
        """, catalog)
        table = catalogs["orders"]
        spec = WindowSpec(order_by=(OrderItem("o_orderdate"),),
                          frame=FrameSpec.range(preceding(30),
                                                current_row()))
        want = _oracle(table, dict(function="count", args=("o_custkey",),
                                   distinct=True), spec)
        dates = table.column("o_orderdate").to_list()
        order = sorted(range(len(dates)), key=lambda i: (dates[i], i))
        assert out.column("mau").to_list() == [want[i] for i in order]

    def test_p99_delivery_time(self, catalogs):
        """percentile_disc(0.99, order by receipt - ship) over 1 week."""
        catalog = Catalog(catalogs)
        out = execute("""
            select l_shipdate,
                   percentile_disc(0.99,
                       order by l_receiptdate - l_shipdate) over w as p99
            from lineitem
            window w as (order by l_shipdate
              range between interval '1 week' preceding and current row)
            order by l_shipdate
        """, catalog)
        p99 = out.column("p99").to_list()
        assert all(v is not None for v in p99)
        assert all(1 <= v <= 30 for v in p99), \
            "delivery delays are 1..30 days by construction"


class TestSection2_2:
    def test_stock_orders_non_constant_bounds(self):
        rng = np.random.default_rng(8)
        n = 300
        table = Table.from_dict({
            "placement_time": (DataType.INT64,
                               sorted(int(v) for v in
                                      rng.integers(0, 3000, n))),
            "price": (DataType.FLOAT64,
                      [float(v) for v in rng.normal(100, 5, n)]),
            "good_for": (DataType.INT64,
                         [int(v) for v in rng.integers(1, 200, n)]),
        })
        out = execute("""
            select price > median(price) over (
              order by placement_time
              range between current row and good_for following) as fav
            from stock_orders order by placement_time
        """, Catalog({"stock_orders": table}))
        flags = out.column("fav").to_list()
        # independent check on a sample of rows
        rows = table.to_rows()
        rows.sort(key=lambda r: r[0])
        import statistics
        for i in range(0, n, 37):
            t, p, g = rows[i]
            window = [r[1] for r in rows if t <= r[0] <= t + g]
            assert flags[i] == (p > statistics.median(window))


class TestSection2_4:
    QUERY = """
      select dbsystem, tps,
        count(distinct dbsystem) over w as c,
        rank(order by tps desc) over w as r,
        first_value(tps order by tps desc) over w as fv_tps,
        first_value(dbsystem order by tps desc) over w as fv_sys,
        lead(tps order by tps desc) over w as ld_tps,
        lead(dbsystem order by tps desc) over w as ld_sys
      from tpcc_results
      window w as (order by submission_date
        range between unbounded preceding and current row)
      order by submission_date
    """

    def test_all_columns_against_oracle(self, catalogs):
        table = catalogs["tpcc_results"]
        out = execute(self.QUERY, Catalog(catalogs))
        spec = WindowSpec(
            order_by=(OrderItem("submission_date"),),
            frame=FrameSpec.range(unbounded_preceding(), current_row()))
        desc = (OrderItem("tps", descending=True),)
        expectations = {
            "c": dict(function="count", args=("dbsystem",), distinct=True),
            "r": dict(function="rank", order_by=desc),
            "fv_tps": dict(function="first_value", args=("tps",),
                           order_by=desc),
            "fv_sys": dict(function="first_value", args=("dbsystem",),
                           order_by=desc),
            "ld_tps": dict(function="lead", args=("tps",), order_by=desc),
            "ld_sys": dict(function="lead", args=("dbsystem",),
                           order_by=desc),
        }
        dates = table.column("submission_date").to_list()
        order = sorted(range(len(dates)), key=lambda i: (dates[i], i))
        for column, kwargs in expectations.items():
            want = _oracle(table, kwargs, spec)
            got = out.column(column).to_list()
            assert_columns_equal(got, [want[i] for i in order])


class TestSection6_2:
    def test_framed_median_query(self, catalogs):
        out = execute("""
            select percentile_disc(0.5, order by l_extendedprice) over (
              order by l_shipdate
              rows between 999 preceding and current row) as med
            from lineitem
        """, Catalog(catalogs))
        assert out.num_rows == catalogs["lineitem"].num_rows
        assert all(v is not None for v in out.column("med"))

    def test_traditional_formulations_are_nested_loops(self):
        plan = explain("""
            with lineitem_rn as (select 1 as rn)
            select (select percentile_disc(0.5)
                    within group (order by l2.rn)
                    from lineitem_rn l2
                    where l2.rn between l1.rn - 999 and l1.rn)
            from lineitem_rn l1
        """)
        assert "(correlated subquery)" in plan


class TestSection6_5:
    def test_nonmonotonic_mod_frame(self, catalogs):
        """rows between mod(...)*m preceding and 500 - ... following."""
        catalog = Catalog(catalogs)
        out = execute("""
            select percentile_disc(0.5, order by l_extendedprice) over (
              order by l_shipdate rows between
                mod(cast(l_extendedprice * 100 as int) * 7703, 499)
                    preceding
                and 42 following) as med
            from lineitem
        """, catalog)
        table = catalogs["lineitem"]
        prices = np.asarray(table.column("l_extendedprice").raw())
        cents = (prices * 100).astype(np.int64)
        offsets = (cents * 7703) % 499
        from repro.window import following
        spec = WindowSpec(
            order_by=(OrderItem("l_shipdate"),),
            frame=FrameSpec.rows(preceding(offsets), following(42)))
        want = _oracle(table, dict(function="percentile_disc",
                                   args=("l_extendedprice",),
                                   fraction=0.5), spec)
        assert_columns_equal(out.column("med").to_list(), want)
