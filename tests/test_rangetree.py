"""Range tree for framed DENSE_RANK (Section 4.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rangetree import DenseRankIndex


def _oracle_distinct_below(keys, lo, hi, threshold):
    return len({k for k in keys[lo:hi] if k < threshold})


class TestDenseRankIndex:
    @pytest.mark.parametrize("fanout", [2, 4])
    def test_distinct_below_random(self, fanout, rng):
        n = 90
        keys = rng.integers(0, 12, size=n)
        index = DenseRankIndex(keys, fanout=fanout)
        for _ in range(120):
            lo, hi = sorted(rng.integers(0, n + 1, size=2))
            t = int(rng.integers(0, 13))
            assert index.distinct_below(int(lo), int(hi), t) == \
                _oracle_distinct_below(keys, lo, hi, t)

    def test_dense_rank(self, rng):
        n = 60
        keys = rng.integers(0, 8, size=n)
        index = DenseRankIndex(keys)
        for i in range(n):
            lo = max(i - 14, 0)
            hi = i + 1
            expected = _oracle_distinct_below(keys, lo, hi, keys[i]) + 1
            assert index.dense_rank(lo, hi, int(keys[i])) == expected

    def test_all_distinct_keys(self):
        keys = np.arange(20)
        index = DenseRankIndex(keys)
        assert index.distinct_below(0, 20, 10) == 10
        assert index.distinct_below(5, 15, 10) == 5

    def test_all_equal_keys(self):
        keys = np.zeros(16, dtype=np.int64)
        index = DenseRankIndex(keys)
        assert index.distinct_below(0, 16, 0) == 0
        assert index.distinct_below(0, 16, 1) == 1

    def test_empty_and_tiny(self):
        index = DenseRankIndex(np.array([], dtype=np.int64))
        assert index.distinct_below(0, 0, 5) == 0
        single = DenseRankIndex(np.array([3]))
        assert single.dense_rank(0, 1, 3) == 1
        assert single.dense_rank(0, 1, 4) == 2

    def test_memory_bytes_positive(self, rng):
        index = DenseRankIndex(rng.integers(0, 5, size=50))
        assert index.memory_bytes() > 0

    @given(st.lists(st.integers(0, 5), min_size=0, max_size=64),
           st.integers(0, 64), st.integers(0, 64), st.integers(0, 7))
    @settings(max_examples=100, deadline=None)
    def test_hypothesis(self, keys, a, b, t):
        n = len(keys)
        lo, hi = sorted((a % (n + 1), b % (n + 1)))
        index = DenseRankIndex(np.asarray(keys, dtype=np.int64))
        assert index.distinct_below(lo, hi, t) == \
            _oracle_distinct_below(keys, lo, hi, t)


class TestBatchedDenseRank:
    def test_matches_scalar(self, rng):
        n = 300
        keys = rng.integers(0, 15, size=n)
        index = DenseRankIndex(keys)
        lo = rng.integers(0, n, size=n)
        hi = np.minimum(lo + rng.integers(1, 60, size=n), n)
        got = index.batched_dense_rank(lo, hi, keys)
        for i in range(n):
            assert got[i] == index.dense_rank(int(lo[i]), int(hi[i]),
                                              int(keys[i]))

    def test_single_row(self):
        index = DenseRankIndex(np.array([5]))
        got = index.batched_dense_rank(np.array([0]), np.array([1]),
                                       np.array([5]))
        assert got.tolist() == [1]

    @pytest.mark.parametrize("fanout", [2, 4])
    def test_fanouts(self, fanout, rng):
        n = 120
        keys = rng.integers(0, 8, size=n)
        index = DenseRankIndex(keys, fanout=fanout)
        lo = np.maximum(np.arange(n) - 13, 0)
        hi = np.arange(n) + 1
        got = index.batched_dense_rank(lo, hi, keys)
        for i in range(0, n, 7):
            want = len({k for k in keys[lo[i]:hi[i]]
                        if k < keys[i]}) + 1
            assert got[i] == want
