"""Unit tests for the process-pool supervision policy.

The :class:`~repro.resilience.supervisor.WorkerSupervisor` is pure
bookkeeping — no processes — so the restart budget, exponential
backoff, and quarantine threshold are pinned down here without ever
forking.
"""

from repro.resilience.supervisor import (
    SupervisorPolicy,
    SupervisorStats,
    WorkerSupervisor,
)


def test_spawn_budget_is_workers_plus_max_restarts():
    supervisor = WorkerSupervisor(
        2, SupervisorPolicy(max_restarts=3))
    for i in range(5):  # budget = 2 workers + 3 restarts
        assert supervisor.allow_spawn(), i
        supervisor.note_spawned(initial=i < 2)
    assert not supervisor.allow_spawn()
    stats = supervisor.stats()
    assert stats.spawned == 5
    assert stats.restarts == 3


def test_spawn_failures_consume_the_budget_too():
    supervisor = WorkerSupervisor(
        1, SupervisorPolicy(max_restarts=2))
    supervisor.note_spawned(initial=True)
    supervisor.note_spawn_failed()
    supervisor.note_spawn_failed()
    assert not supervisor.allow_spawn()
    assert supervisor.stats().spawn_failures == 2


def test_backoff_doubles_and_caps():
    policy = SupervisorPolicy(backoff=0.05, max_backoff=0.3)
    supervisor = WorkerSupervisor(1, policy)
    assert supervisor.spawn_delay() == 0.0
    supervisor.note_spawn_failed()
    assert supervisor.spawn_delay() == 0.05
    supervisor.note_spawn_failed()
    assert supervisor.spawn_delay() == 0.10
    supervisor.note_spawn_failed()
    assert supervisor.spawn_delay() == 0.20
    supervisor.note_spawn_failed()
    assert supervisor.spawn_delay() == 0.30  # capped
    # A successful spawn heals the streak entirely.
    supervisor.note_spawned(initial=False)
    assert supervisor.spawn_delay() == 0.0


def test_quarantine_threshold():
    supervisor = WorkerSupervisor(
        2, SupervisorPolicy(quarantine_after=2))
    assert not supervisor.should_quarantine(0)
    assert not supervisor.should_quarantine(1)
    assert supervisor.should_quarantine(2)
    assert supervisor.should_quarantine(3)


def test_counters_snapshot_and_render():
    supervisor = WorkerSupervisor(2)
    supervisor.note_spawned(initial=True)
    supervisor.note_crash()
    supervisor.note_hang()
    supervisor.note_retry()
    supervisor.note_quarantine()
    supervisor.note_abort()
    stats = supervisor.stats()
    assert stats.to_dict() == {
        "workers": 2, "spawned": 1, "spawn_failures": 0, "restarts": 0,
        "crashes": 1, "hangs": 1, "retries": 1, "quarantined": 1,
        "aborts": 1}
    assert stats.eventful
    rendered = "\n".join(stats.render())
    assert "crashes=1" in rendered and "quarantined=1" in rendered
    # Snapshots are copies, not views.
    stats.crashes = 99
    assert supervisor.stats().crashes == 1


def test_quiet_supervisor_renders_one_line():
    stats = SupervisorStats(workers=4, spawned=4)
    assert not stats.eventful
    assert len(stats.render()) == 1
