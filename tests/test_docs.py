"""Documentation stays executable: README snippets must parse and run."""

import pathlib
import re


from repro.sql import Catalog, execute, parse
from repro.tpch import lineitem

README = pathlib.Path(__file__).parent.parent / "README.md"


def _sql_blocks(text):
    return re.findall(r"```sql\n(.*?)```", text, flags=re.DOTALL)


def test_readme_exists_and_names_the_paper():
    text = README.read_text()
    assert "Arbitrarily-Framed Holistic SQL Aggregates" in text
    assert "3514221.3526184" in text  # the paper's DOI


def test_readme_sql_snippets_parse():
    for block in _sql_blocks(README.read_text()):
        for statement in [s for s in block.split(";") if s.strip()]:
            cleaned = "\n".join(line for line in statement.splitlines()
                                if not line.strip().startswith("--"))
            if not cleaned.strip():
                continue
            parse(cleaned)


def test_readme_headline_query_executes():
    blocks = _sql_blocks(README.read_text())
    assert blocks, "README must carry the headline SQL example"
    catalog = Catalog({"lineitem": lineitem(500)})
    result = execute(blocks[0], catalog)
    assert result.num_rows == 500
    assert result.num_columns >= 6


def test_design_and_experiments_reference_every_figure():
    design = (README.parent / "DESIGN.md").read_text()
    experiments = (README.parent / "EXPERIMENTS.md").read_text()
    for marker in ["Table 1", "Fig 9", "Fig 10", "Fig 11", "Fig 12",
                   "Fig 13", "Fig 14"]:
        assert marker in design, f"DESIGN.md must index {marker}"
    for marker in ["Table 1", "Figure 9", "Figure 10", "Figure 11",
                   "Figure 12", "Figure 13", "Figure 14", "6.6"]:
        assert marker in experiments, f"EXPERIMENTS.md must cover {marker}"


def test_bench_modules_cover_every_figure():
    bench_dir = README.parent / "benchmarks"
    names = {p.stem for p in bench_dir.glob("bench_*.py")}
    for required in ["bench_fig09_sql_formulations",
                     "bench_fig10_scalability",
                     "bench_fig11_frame_sizes",
                     "bench_fig12_nonmonotonic",
                     "bench_fig13_fanout_sampling",
                     "bench_fig14_cost_breakdown",
                     "bench_table1_complexity",
                     "bench_memory_model"]:
        assert required in names
