"""Plan cache: fingerprinting, LRU accounting, Session integration."""

import json

import pytest

from repro.sql import Catalog, Session, SessionConfig
from repro.sql.parser import parse
from repro.sql.plancache import (
    DEFAULT_PLAN_CACHE_BYTES,
    PlanCache,
    fingerprint_sql,
    normalize_sql,
    plan_bytes,
)
from repro.table import DataType, Table

SQL = ("SELECT g, sum(v) OVER (PARTITION BY g ORDER BY v "
       "ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) AS s FROM t")


def _catalog():
    table = Table.from_dict({
        "g": (DataType.INT64, [1, 1, 2, 2, 2]),
        "v": (DataType.INT64, [5, 3, 8, 1, 4]),
    })
    return Catalog({"t": table})


class TestNormalization:
    def test_whitespace_collapses(self):
        assert (normalize_sql("SELECT  a\n FROM   t;")
                == normalize_sql("SELECT a FROM t"))

    def test_fingerprints_match_for_equivalent_text(self):
        a = fingerprint_sql("SELECT a FROM t")
        b = fingerprint_sql("  SELECT a\tFROM t ;")
        assert a == b

    def test_case_is_significant(self):
        # Case folding would conflate string literals; keys stay
        # case-sensitive and we accept the conservative misses.
        assert (fingerprint_sql("SELECT 'x' FROM t")
                != fingerprint_sql("SELECT 'X' FROM t"))

    def test_different_statements_differ(self):
        assert (fingerprint_sql("SELECT a FROM t")
                != fingerprint_sql("SELECT b FROM t"))

    def test_line_comments_are_stripped(self):
        assert (fingerprint_sql("SELECT a -- pick a\nFROM t")
                == fingerprint_sql("SELECT a FROM t"))

    def test_block_comments_are_stripped(self):
        assert (fingerprint_sql("SELECT /* v2 of the\nreport */ a FROM t")
                == fingerprint_sql("SELECT a FROM t"))

    def test_comment_markers_inside_strings_survive(self):
        # '--' and '/*' inside a string literal are data, not comments.
        sql = "SELECT a FROM t WHERE b = 'x -- /* y'"
        assert normalize_sql(sql).endswith("'x -- /* y'")
        assert (fingerprint_sql(sql)
                != fingerprint_sql("SELECT a FROM t WHERE b = 'x"))

    def test_comment_replaced_by_separator_not_deleted(self):
        # Stripping must not glue adjacent tokens together.
        assert (fingerprint_sql("SELECT a/* gap */FROM t")
                == fingerprint_sql("SELECT a FROM t"))


class TestPlanCache:
    def test_miss_then_hit(self):
        cache = PlanCache()
        first, hit1 = cache.get_or_parse(SQL, parse)
        second, hit2 = cache.get_or_parse("  " + SQL + " ;", parse)
        assert (hit1, hit2) == (False, True)
        assert second is first
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
        assert stats.hit_ratio == 0.5
        assert stats.bytes_in_use > 0

    def test_parse_called_once_per_fingerprint(self):
        calls = []

        def counting_parse(sql):
            calls.append(sql)
            return parse(sql)

        cache = PlanCache()
        for _ in range(5):
            cache.get_or_parse(SQL, counting_parse)
        assert len(calls) == 1

    def test_lru_eviction_under_byte_budget(self):
        statements = [f"SELECT g, v + {i} AS x FROM t" for i in range(4)]
        probe = plan_bytes(parse(statements[0]))
        cache = PlanCache(budget_bytes=int(probe * 2.5))
        for sql in statements:
            cache.get_or_parse(sql, parse)
        stats = cache.stats()
        assert stats.evictions > 0
        assert stats.bytes_in_use <= stats.budget_bytes
        assert len(cache) == stats.entries < len(statements)
        # Least-recently-used entries left first: the newest survives.
        _, hit = cache.get_or_parse(statements[-1], parse)
        assert hit

    def test_hit_refreshes_recency(self):
        probe = plan_bytes(parse("SELECT g FROM t"))
        cache = PlanCache(budget_bytes=int(probe * 2.5))
        cache.get_or_parse("SELECT g FROM t", parse)
        cache.get_or_parse("SELECT v FROM t", parse)
        cache.get_or_parse("SELECT g FROM t", parse)  # refresh
        cache.get_or_parse("SELECT g, v FROM t", parse)  # evicts v
        _, hit = cache.get_or_parse("SELECT g FROM t", parse)
        assert hit

    def test_oversize_plan_is_not_stored(self):
        cache = PlanCache(budget_bytes=16)
        _, hit1 = cache.get_or_parse(SQL, parse)
        _, hit2 = cache.get_or_parse(SQL, parse)
        assert (hit1, hit2) == (False, False)
        assert len(cache) == 0

    def test_budget_zero_disables(self):
        cache = PlanCache(budget_bytes=0)
        assert not cache.enabled
        _, hit = cache.get_or_parse(SQL, parse)
        _, hit2 = cache.get_or_parse(SQL, parse)
        assert not hit and not hit2
        assert len(cache) == 0

    def test_invalidate_clears_entries_keeps_counters(self):
        cache = PlanCache()
        cache.get_or_parse(SQL, parse)
        cache.get_or_parse(SQL, parse)
        cache.invalidate()
        stats = cache.stats()
        assert stats.entries == 0 and stats.bytes_in_use == 0
        assert stats.hits == 1 and stats.misses == 1

    def test_stats_render_and_to_dict(self):
        cache = PlanCache()
        cache.get_or_parse(SQL, parse)
        stats = cache.stats()
        assert any("hits" in line for line in stats.render())
        payload = json.loads(json.dumps(stats.to_dict()))
        assert payload["misses"] == 1
        assert payload["budget_bytes"] == DEFAULT_PLAN_CACHE_BYTES


class TestSessionIntegration:
    def test_repeated_execute_hits_the_cache(self):
        with Session(_catalog()) as session:
            first = session.execute(SQL)
            second = session.execute(SQL + "  ")
            assert first == second
            stats = session.plan_cache.stats()
            assert stats.hits >= 1 and stats.misses >= 1

    def test_metrics_expose_plan_cache_counters(self):
        with Session(_catalog()) as session:
            session.execute(SQL)
            session.execute(SQL)
            text = session.metrics_text()
            assert "repro_plan_cache_hits_total 1" in text
            assert "repro_plan_cache_misses_total 1" in text
            assert "repro_plan_cache_entries 1" in text

    def test_explain_renders_plan_cache_section(self):
        with Session(_catalog()) as session:
            session.execute(SQL)
            plan = session.explain(SQL)
            assert "PlanCache" in plan

    def test_plan_cache_bytes_zero_disables_in_session(self):
        config = SessionConfig(plan_cache_bytes=0)
        with Session(_catalog(), config=config) as session:
            session.execute(SQL)
            session.execute(SQL)
            stats = session.plan_cache.stats()
            assert stats.hits == 0

    def test_traced_query_annotates_cache_outcome(self):
        with Session(_catalog()) as session:
            session.execute(SQL)
            result = session.execute(SQL, trace=True)

            def find(node, name):
                if node["name"] == name:
                    return node
                for child in node.get("children", ()):
                    got = find(child, name)
                    if got is not None:
                        return got
                return None

            span = find(result.trace_dict(), "parse")
            assert span is not None
            assert span["attrs"]["plan_cache"] == "hit"

    def test_prepared_statement_reexecution_hits(self):
        """The prepared-statement contract: one parse, N cache hits.

        ``prepare`` parses (a miss); every subsequent ``execute`` binds
        parameters into the *cached* template, so re-executions are all
        hits and the hit rate climbs toward 1.
        """
        table = Table.from_dict({
            "g": (DataType.INT64, [1, 1, 2, 2, 2]),
            "v": (DataType.INT64, [5, 3, 8, 1, 4]),
        })
        with Session(Catalog({"t": table})) as session:
            stmt = session.prepare("SELECT g, v FROM t WHERE v > $1")
            for threshold in (1, 2, 3, 4, 5, 6):
                stmt.execute([threshold])
            stats = session.plan_cache.stats()
            assert stats.misses == 1
            assert stats.hits == 6
            assert stats.hit_ratio == pytest.approx(6 / 7)
            # A second handle for the same text never re-parses.
            session.prepare("SELECT g, v FROM t WHERE v > $1").execute([0])
            stats = session.plan_cache.stats()
            assert stats.misses == 1 and stats.hits == 8

    def test_config_rejects_negative_budget(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            SessionConfig(plan_cache_bytes=-1)
