"""SessionConfig / QueryOptions: validation, env, the legacy shim."""

import warnings

import pytest

from repro.errors import ConfigurationError, ReproDeprecationWarning
from repro.resilience.context import ResourceLimits
from repro.sql import Catalog, QueryOptions, Session, SessionConfig
from repro.table import DataType, Table


def _catalog():
    table = Table.from_dict({
        "g": (DataType.INT64, [1, 1, 2]),
        "v": (DataType.INT64, [10, 20, 30]),
    })
    return Catalog({"t": table})


class TestSessionConfig:
    def test_defaults(self):
        config = SessionConfig()
        assert config.max_concurrent == 4
        assert config.max_queue == 16
        assert config.breaker_threshold == 5
        assert config.verify_rate == 0.0
        assert config.metrics is True
        assert config.trace is None

    @pytest.mark.parametrize("kwargs,message", [
        ({"budget_bytes": -1}, "budget_bytes"),
        ({"timeout": 0}, "timeout"),
        ({"timeout": -2.5}, "timeout"),
        ({"max_concurrent": 0}, "max_concurrent"),
        ({"max_queue": -1}, "max_queue"),
        ({"queue_timeout": -0.1}, "queue_timeout"),
        ({"breaker_threshold": 0}, "breaker_threshold"),
        ({"breaker_reset": 0}, "breaker_reset"),
        ({"verify_rate": 1.5}, "verify_rate"),
        ({"verify_rate": -0.1}, "verify_rate"),
        ({"workers": 0}, "workers"),
        ({"trace_max_spans": 0}, "trace_max_spans"),
        ({"spill": False, "spill_dir": "/tmp/x"}, "spill_dir"),
    ])
    def test_invalid_combinations_fail_at_construction(self, kwargs,
                                                       message):
        with pytest.raises(ConfigurationError, match=message):
            SessionConfig(**kwargs)

    def test_configuration_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            SessionConfig(timeout=-1)

    def test_replace_derives_a_variant(self):
        base = SessionConfig(workers=2)
        derived = base.replace(verify_rate=0.5)
        assert derived.workers == 2
        assert derived.verify_rate == 0.5
        assert base.verify_rate == 0.0

    def test_frozen(self):
        with pytest.raises(Exception):
            SessionConfig().workers = 3


class TestFromEnv:
    def test_reads_repro_variables(self):
        config = SessionConfig.from_env(env={
            "REPRO_BUDGET_BYTES": "4096",
            "REPRO_TIMEOUT": "2.5",
            "REPRO_MAX_CONCURRENT": "8",
            "REPRO_VERIFY_RATE": "0.25",
            "REPRO_WORKERS": "4",
            "REPRO_TRACE": "1",
            "REPRO_METRICS": "off",
        })
        assert config.budget_bytes == 4096
        assert config.timeout == 2.5
        assert config.max_concurrent == 8
        assert config.verify_rate == 0.25
        assert config.workers == 4
        assert config.trace is True
        assert config.metrics is False

    def test_unset_and_blank_keep_defaults(self):
        config = SessionConfig.from_env(env={"REPRO_BUDGET_BYTES": ""})
        assert config == SessionConfig()

    def test_overrides_win_over_the_environment(self):
        config = SessionConfig.from_env(env={"REPRO_WORKERS": "4"},
                                        workers=2)
        assert config.workers == 2

    @pytest.mark.parametrize("env", [
        {"REPRO_BUDGET_BYTES": "a lot"},
        {"REPRO_TIMEOUT": "soon"},
        {"REPRO_TRACE": "maybe"},
    ])
    def test_unparseable_values_raise_typed_errors(self, env):
        with pytest.raises(ConfigurationError,
                           match="environment variable"):
            SessionConfig.from_env(env=env)

    def test_validation_still_applies(self):
        with pytest.raises(ConfigurationError, match="workers"):
            SessionConfig.from_env(env={"REPRO_WORKERS": "0"})


class TestQueryOptions:
    def test_defaults(self):
        options = QueryOptions()
        assert options.priority == "interactive"
        assert options.trace is None

    def test_bad_priority_and_timeout(self):
        with pytest.raises(ConfigurationError, match="priority"):
            QueryOptions(priority="background")
        with pytest.raises(ConfigurationError, match="timeout"):
            QueryOptions(timeout=0)

    def test_replace(self):
        options = QueryOptions(priority="batch")
        assert options.replace(trace=True).priority == "batch"


class TestSessionConstruction:
    def test_config_object_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with Session(_catalog(),
                         config=SessionConfig(workers=2)) as session:
                assert session.config.workers == 2

    def test_legacy_kwargs_warn_and_still_work(self):
        with pytest.warns(ReproDeprecationWarning,
                          match="SessionConfig"):
            session = Session(_catalog(), budget_bytes=4096,
                              max_concurrent=2)
        with session:
            assert session.config.budget_bytes == 4096
            assert session.config.max_concurrent == 2
            out = session.execute("SELECT v FROM t ORDER BY v")
            assert out.column("v").to_list() == [10, 20, 30]

    def test_legacy_kwargs_are_validated_like_the_config(self):
        with pytest.warns(ReproDeprecationWarning):
            with pytest.raises(ConfigurationError, match="workers"):
                Session(_catalog(), workers=0)

    def test_config_plus_legacy_kwargs_is_an_error(self):
        with pytest.raises(ConfigurationError, match="both"):
            Session(_catalog(), config=SessionConfig(), workers=2)

    def test_unknown_kwarg_is_a_type_error(self):
        with pytest.raises(TypeError, match="num_threads"):
            Session(_catalog(), num_threads=4)


class TestExecuteOptions:
    def test_options_object(self):
        with Session(_catalog()) as session:
            result = session.execute(
                "SELECT v FROM t",
                options=QueryOptions(priority="batch",
                                     limits=ResourceLimits(max_rows=100)))
            assert result.stats.priority == "batch"

    def test_loose_kwargs_still_accepted(self):
        with Session(_catalog()) as session:
            result = session.execute("SELECT v FROM t", priority="batch",
                                     timeout=30.0)
            assert result.stats.priority == "batch"

    def test_options_plus_loose_kwargs_is_an_error(self):
        with Session(_catalog()) as session:
            with pytest.raises(ConfigurationError, match="options"):
                session.execute("SELECT v FROM t",
                                options=QueryOptions(), timeout=1.0)

    def test_bad_priority_fails_before_execution(self):
        with Session(_catalog()) as session:
            with pytest.raises(ConfigurationError, match="priority"):
                session.execute("SELECT v FROM t", priority="background")
