"""Vectorised SQL value semantics: arithmetic, comparisons, NULL logic."""

import datetime

import numpy as np
import pytest

from repro.errors import SqlAnalysisError
from repro.sql.vector import (
    Vector,
    arithmetic,
    cast,
    comparison,
    concat,
    from_scalar,
    logical_and,
    logical_not,
    logical_or,
    negate,
    truthy_rows,
)
from repro.table.column import Column, DataType


def vec(values, dtype=DataType.INT64):
    column = Column(dtype, values)
    return Vector(column.raw(), column.validity.copy(), dtype)


class TestArithmetic:
    def test_int_ops(self):
        a, b = vec([7, 8]), vec([2, 3])
        assert arithmetic("+", a, b).values.tolist() == [9, 11]
        assert arithmetic("-", a, b).values.tolist() == [5, 5]
        assert arithmetic("*", a, b).values.tolist() == [14, 24]
        assert arithmetic("%", a, b).values.tolist() == [1, 2]
        assert arithmetic("+", a, b).dtype is DataType.INT64

    def test_division_is_float(self):
        out = arithmetic("/", vec([7]), vec([2]))
        assert out.dtype is DataType.FLOAT64
        assert out.values[0] == pytest.approx(3.5)

    def test_division_by_zero_is_null(self):
        out = arithmetic("/", vec([7]), vec([0]))
        assert not out.validity[0]
        out = arithmetic("%", vec([7]), vec([0]))
        assert not out.validity[0]

    def test_null_propagation(self):
        out = arithmetic("+", vec([1, None]), vec([2, 2]))
        assert out.validity.tolist() == [True, False]

    def test_date_arithmetic(self):
        d = vec([datetime.date(2020, 1, 10)], DataType.DATE)
        days = vec([5])
        plus = arithmetic("+", d, days)
        assert plus.dtype is DataType.DATE
        assert plus.python_value(0) == datetime.date(2020, 1, 15)
        minus = arithmetic("-", d, days)
        assert minus.python_value(0) == datetime.date(2020, 1, 5)
        d2 = vec([datetime.date(2020, 2, 1)], DataType.DATE)
        diff = arithmetic("-", d2, d)
        assert diff.dtype is DataType.INT64
        assert diff.values[0] == 22

    def test_date_times_date_rejected(self):
        d = vec([datetime.date(2020, 1, 1)], DataType.DATE)
        with pytest.raises(SqlAnalysisError):
            arithmetic("*", d, d)
        with pytest.raises(SqlAnalysisError):
            arithmetic("+", d, d)

    def test_string_arithmetic_rejected(self):
        with pytest.raises(SqlAnalysisError):
            arithmetic("+", vec(["a"], DataType.STRING), vec([1]))


class TestComparison:
    def test_numeric(self):
        a, b = vec([1, 2, 3]), vec([2, 2, 2])
        assert comparison("<", a, b).values.tolist() == [True, False, False]
        assert comparison("=", a, b).values.tolist() == [False, True, False]
        assert comparison(">=", a, b).values.tolist() == [False, True, True]
        assert comparison("<>", a, b).values.tolist() == [True, False, True]

    def test_strings(self):
        a = vec(["apple", "pear"], DataType.STRING)
        b = vec(["banana", "pear"], DataType.STRING)
        assert comparison("<", a, b).values.tolist() == [True, False]
        assert comparison("=", a, b).values.tolist() == [False, True]

    def test_string_vs_number_rejected(self):
        with pytest.raises(SqlAnalysisError):
            comparison("=", vec(["x"], DataType.STRING), vec([1]))

    def test_null_comparison_is_null(self):
        out = comparison("=", vec([None]), vec([1]))
        assert not out.validity[0]


class TestLogic:
    def test_kleene_and(self):
        true = vec([True], DataType.BOOL)
        false = vec([False], DataType.BOOL)
        null = vec([None], DataType.BOOL)
        assert truthy_rows(logical_and(true, true)).tolist() == [True]
        assert truthy_rows(logical_and(true, false)).tolist() == [False]
        # NULL AND FALSE = FALSE (valid), NULL AND TRUE = NULL
        out = logical_and(null, false)
        assert out.validity[0] and not out.values[0]
        out = logical_and(null, true)
        assert not out.validity[0]

    def test_kleene_or(self):
        true = vec([True], DataType.BOOL)
        null = vec([None], DataType.BOOL)
        out = logical_or(null, true)
        assert out.validity[0] and out.values[0]
        out = logical_or(null, vec([False], DataType.BOOL))
        assert not out.validity[0]

    def test_not(self):
        out = logical_not(vec([True, None], DataType.BOOL))
        assert out.values.tolist()[0] is False or not out.values[0]
        assert out.validity.tolist() == [True, False]

    def test_negate(self):
        assert negate(vec([3])).values.tolist() == [-3]
        with pytest.raises(SqlAnalysisError):
            negate(vec(["x"], DataType.STRING))


class TestMisc:
    def test_concat(self):
        out = concat(vec(["a", None], DataType.STRING),
                     vec(["b", "c"], DataType.STRING))
        assert out.values[0] == "ab"
        assert not out.validity[1]

    def test_from_scalar_types(self):
        assert from_scalar(1, 2).dtype is DataType.INT64
        assert from_scalar(1.5, 2).dtype is DataType.FLOAT64
        assert from_scalar("s", 2).dtype is DataType.STRING
        assert from_scalar(True, 2).dtype is DataType.BOOL
        assert from_scalar(datetime.date(2020, 1, 1), 1).dtype \
            is DataType.DATE
        null = from_scalar(None, 3)
        assert not null.validity.any()

    def test_cast(self):
        assert cast(vec([1.9], DataType.FLOAT64), "int").values[0] == 1
        assert cast(vec([3]), "double").dtype is DataType.FLOAT64
        assert cast(vec([3]), "varchar").values[0] == "3"
        out = cast(vec(["12", "oops"], DataType.STRING), "int")
        assert out.values[0] == 12 and not out.validity[1]
        with pytest.raises(SqlAnalysisError):
            cast(vec([1]), "blob")

    def test_to_column_roundtrip(self):
        v = vec([1, None, 3])
        assert v.to_column().to_list() == [1, None, 3]

    def test_take(self):
        v = vec(["a", "b", "c"], DataType.STRING)
        assert v.take(np.array([2, 0])).values == ["c", "a"]
