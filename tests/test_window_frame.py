"""Frame specification types and validation."""

import numpy as np
import pytest

from repro.errors import FrameError
from repro.window.frame import (
    BoundType,
    FrameBound,
    FrameExclusion,
    FrameMode,
    FrameSpec,
    OrderItem,
    WindowSpec,
    current_row,
    following,
    preceding,
    unbounded_following,
    unbounded_preceding,
)


class TestFrameBound:
    def test_offset_required(self):
        with pytest.raises(FrameError):
            FrameBound(BoundType.PRECEDING)
        with pytest.raises(FrameError):
            FrameBound(BoundType.FOLLOWING)

    def test_offset_forbidden(self):
        with pytest.raises(FrameError):
            FrameBound(BoundType.CURRENT_ROW, offset=1)
        with pytest.raises(FrameError):
            FrameBound(BoundType.UNBOUNDED_PRECEDING, offset=1)

    def test_negative_offset_rejected(self):
        with pytest.raises(FrameError):
            preceding(-1)

    def test_offset_array(self):
        bound = preceding(np.array([1, 2, 3]))
        assert bound.offset_array(3).tolist() == [1, 2, 3]
        with pytest.raises(FrameError):
            bound.offset_array(4)

    def test_negative_array_offset_rejected(self):
        bound = preceding(np.array([1, -2]))
        with pytest.raises(FrameError):
            bound.offset_array(2)

    def test_scalar_broadcast(self):
        assert following(5).offset_array(3).tolist() == [5, 5, 5]


class TestFrameSpec:
    def test_invalid_combinations(self):
        with pytest.raises(FrameError):
            FrameSpec(FrameMode.ROWS, unbounded_following(), current_row())
        with pytest.raises(FrameError):
            FrameSpec(FrameMode.ROWS, current_row(), unbounded_preceding())

    def test_default_frame(self):
        frame = FrameSpec.default()
        assert frame.mode is FrameMode.RANGE
        assert frame.start.type is BoundType.UNBOUNDED_PRECEDING
        assert frame.end.type is BoundType.CURRENT_ROW

    def test_constructors(self):
        rows = FrameSpec.rows(preceding(1), following(1))
        assert rows.mode is FrameMode.ROWS
        groups = FrameSpec.groups(preceding(1), current_row(),
                                  FrameExclusion.TIES)
        assert groups.has_exclusion


class TestWindowSpec:
    def test_effective_frame_with_order(self):
        spec = WindowSpec(order_by=(OrderItem("x"),))
        frame = spec.effective_frame()
        assert frame.mode is FrameMode.RANGE
        assert frame.end.type is BoundType.CURRENT_ROW

    def test_effective_frame_without_order(self):
        frame = WindowSpec().effective_frame()
        assert frame.start.type is BoundType.UNBOUNDED_PRECEDING
        assert frame.end.type is BoundType.UNBOUNDED_FOLLOWING

    def test_explicit_frame_wins(self):
        explicit = FrameSpec.rows(preceding(3), current_row())
        spec = WindowSpec(order_by=(OrderItem("x"),), frame=explicit)
        assert spec.effective_frame() is explicit


class TestOrderItem:
    def test_default_null_placement(self):
        assert OrderItem("x").resolved_nulls_last() is True
        assert OrderItem("x", descending=True).resolved_nulls_last() is False
        assert OrderItem("x", nulls_last=False).resolved_nulls_last() is False
