"""Every framed window function: merge sort tree vs the naive oracle.

The central correctness suite: a grid of frame specifications (ROWS /
RANGE / GROUPS, exclusions, per-row offsets) crossed with every function
family, each evaluated by both the MST algorithms and the brute-force
oracle. NULLs are present in the data throughout.
"""

import numpy as np
import pytest

from conftest import assert_columns_equal, make_window_table
from repro.mst.aggregates import make_udaf
from repro.window import (
    FrameExclusion,
    FrameSpec,
    WindowCall,
    WindowSpec,
    current_row,
    following,
    preceding,
    unbounded_following,
    unbounded_preceding,
    window_query,
)
from repro.window.frame import OrderItem

TABLE = make_window_table(n=140, seed=7)

SPECS = {
    "sliding": WindowSpec(partition_by=("g",), order_by=(OrderItem("o"),),
                          frame=FrameSpec.rows(preceding(6), current_row())),
    "centered": WindowSpec(order_by=(OrderItem("o"),),
                           frame=FrameSpec.rows(preceding(4), following(5))),
    "range": WindowSpec(partition_by=("g",), order_by=(OrderItem("o"),),
                        frame=FrameSpec.range(preceding(8), following(3))),
    "groups": WindowSpec(partition_by=("g",), order_by=(OrderItem("o"),),
                         frame=FrameSpec.groups(preceding(2), following(1))),
    "exclude_current": WindowSpec(
        partition_by=("g",), order_by=(OrderItem("o"),),
        frame=FrameSpec.rows(preceding(7), following(4),
                             FrameExclusion.CURRENT_ROW)),
    "exclude_group": WindowSpec(
        partition_by=("g",), order_by=(OrderItem("o"),),
        frame=FrameSpec.rows(preceding(7), following(4),
                             FrameExclusion.GROUP)),
    "exclude_ties": WindowSpec(
        partition_by=("g",), order_by=(OrderItem("o"),),
        frame=FrameSpec.rows(preceding(7), following(4),
                             FrameExclusion.TIES)),
    "running": WindowSpec(order_by=(OrderItem("o"),),
                          frame=FrameSpec.rows(unbounded_preceding(),
                                               current_row())),
    "everything_after": WindowSpec(
        order_by=(OrderItem("o"),),
        frame=FrameSpec.rows(current_row(), unbounded_following())),
}


def run_both(call_kwargs, spec):
    mst = WindowCall(**{**call_kwargs, "algorithm": "mst"})
    naive = WindowCall(**{**call_kwargs, "algorithm": "naive"})
    got = window_query(TABLE, [mst], spec).columns[-1].to_list()
    want = window_query(TABLE, [naive], spec).columns[-1].to_list()
    assert_columns_equal(got, want)
    return got


@pytest.mark.parametrize("spec_name", sorted(SPECS))
class TestAllFamiliesAgainstOracle:
    def test_count_distinct(self, spec_name):
        run_both(dict(function="count", args=("x",), distinct=True),
                 SPECS[spec_name])

    def test_sum_distinct(self, spec_name):
        run_both(dict(function="sum", args=("x",), distinct=True),
                 SPECS[spec_name])

    def test_avg_distinct(self, spec_name):
        run_both(dict(function="avg", args=("x",), distinct=True),
                 SPECS[spec_name])

    def test_min_max_distinct(self, spec_name):
        run_both(dict(function="min", args=("x",), distinct=True),
                 SPECS[spec_name])
        run_both(dict(function="max", args=("x",), distinct=True),
                 SPECS[spec_name])

    def test_rank(self, spec_name):
        run_both(dict(function="rank",
                      order_by=(OrderItem("y", descending=True),)),
                 SPECS[spec_name])

    def test_dense_rank(self, spec_name):
        run_both(dict(function="dense_rank", order_by=(OrderItem("x"),)),
                 SPECS[spec_name])

    def test_row_number(self, spec_name):
        run_both(dict(function="row_number", order_by=(OrderItem("y"),)),
                 SPECS[spec_name])

    def test_percent_rank(self, spec_name):
        run_both(dict(function="percent_rank", order_by=(OrderItem("y"),)),
                 SPECS[spec_name])

    def test_cume_dist(self, spec_name):
        run_both(dict(function="cume_dist", order_by=(OrderItem("y"),)),
                 SPECS[spec_name])

    def test_ntile(self, spec_name):
        run_both(dict(function="ntile", buckets=3,
                      order_by=(OrderItem("y"),)), SPECS[spec_name])

    def test_percentile_disc(self, spec_name):
        run_both(dict(function="percentile_disc", args=("y",),
                      fraction=0.9), SPECS[spec_name])

    def test_percentile_cont(self, spec_name):
        run_both(dict(function="percentile_cont", args=("y",),
                      fraction=0.25), SPECS[spec_name])

    def test_median(self, spec_name):
        run_both(dict(function="median", args=("y",)), SPECS[spec_name])

    def test_first_value(self, spec_name):
        run_both(dict(function="first_value", args=("x",),
                      order_by=(OrderItem("y"),)), SPECS[spec_name])

    def test_last_value(self, spec_name):
        run_both(dict(function="last_value", args=("x",)),
                 SPECS[spec_name])

    def test_nth_value(self, spec_name):
        run_both(dict(function="nth_value", args=("y",), nth=3),
                 SPECS[spec_name])

    def test_nth_value_from_last_ignore_nulls(self, spec_name):
        run_both(dict(function="nth_value", args=("x",), nth=2,
                      from_last=True, ignore_nulls=True),
                 SPECS[spec_name])

    def test_lead(self, spec_name):
        run_both(dict(function="lead", args=("y",), offset=2,
                      order_by=(OrderItem("y"),)), SPECS[spec_name])

    def test_lag_with_default(self, spec_name):
        run_both(dict(function="lag", args=("x",), offset=1, default=-99),
                 SPECS[spec_name])

    def test_plain_aggregates(self, spec_name):
        for fn in ("sum", "avg", "min", "max", "count"):
            run_both(dict(function=fn, args=("y",)), SPECS[spec_name])
        run_both(dict(function="count_star"), SPECS[spec_name])

    def test_filter_clause(self, spec_name):
        run_both(dict(function="median", args=("y",), filter_where="flag"),
                 SPECS[spec_name])
        run_both(dict(function="count", args=("x",), distinct=True,
                      filter_where="flag"), SPECS[spec_name])
        run_both(dict(function="rank", order_by=(OrderItem("y"),),
                      filter_where="flag"), SPECS[spec_name])


class TestNonMonotonicFrames:
    """Section 6.5: per-row offsets produce non-monotonic frames."""

    def _spec(self, seed=3):
        rng = np.random.default_rng(seed)
        n = TABLE.num_rows
        start = rng.integers(0, 30, size=n)
        end = rng.integers(0, 30, size=n)
        return WindowSpec(order_by=(OrderItem("o"),),
                          frame=FrameSpec.rows(preceding(start),
                                               following(end)))

    def test_median(self):
        run_both(dict(function="median", args=("y",)), self._spec())

    def test_count_distinct(self):
        run_both(dict(function="count", args=("x",), distinct=True),
                 self._spec())

    def test_rank(self):
        run_both(dict(function="rank", order_by=(OrderItem("y"),)),
                 self._spec())

    def test_lead(self):
        run_both(dict(function="lead", args=("y",),
                      order_by=(OrderItem("y"),)), self._spec())

    def test_empty_frames_possible(self):
        n = TABLE.num_rows
        spec = WindowSpec(order_by=(OrderItem("o"),),
                          frame=FrameSpec.rows(following(5), following(2)))
        got = run_both(dict(function="median", args=("y",)), spec)
        assert all(v is None for v in got)


class TestUdaf:
    def test_udaf_distinct_framed(self):
        """A user-defined product aggregate with DISTINCT framing —
        merge only, no inverse (Section 4.3)."""
        product = make_udaf("product", identity=None,
                            lift=lambda v: v,
                            merge=lambda a, b: b if a is None
                            else (a if b is None else a * b))
        spec = SPECS["sliding"]
        run_both(dict(function="udaf", args=("x",), distinct=True,
                      udaf=product), spec)

    def test_udaf_plain_framed(self):
        concat_len = make_udaf("sumlen", identity=0,
                               lift=lambda v: 1,
                               merge=lambda a, b: a + b)
        run_both(dict(function="udaf", args=("y",), udaf=concat_len),
                 SPECS["centered"])

    def test_udaf_distinct_with_exclusion_falls_back(self):
        product = make_udaf("product", identity=None,
                            lift=lambda v: v,
                            merge=lambda a, b: b if a is None
                            else (a if b is None else a * b))
        run_both(dict(function="udaf", args=("x",), distinct=True,
                      udaf=product), SPECS["exclude_ties"])


class TestAlternativeAlgorithms:
    """The competitor implementations must agree with the oracle too."""

    @pytest.mark.parametrize("algorithm", ["incremental", "ostree",
                                           "segtree"])
    def test_percentile_backends(self, algorithm):
        spec = SPECS["sliding"]
        want = window_query(
            TABLE, [WindowCall("median", ("y",), algorithm="naive")],
            spec).columns[-1].to_list()
        got = window_query(
            TABLE, [WindowCall("median", ("y",), algorithm=algorithm)],
            spec).columns[-1].to_list()
        assert_columns_equal(got, want)

    def test_incremental_distinct(self):
        spec = SPECS["range"]
        want = window_query(
            TABLE, [WindowCall("count", ("x",), distinct=True,
                               algorithm="naive")],
            spec).columns[-1].to_list()
        got = window_query(
            TABLE, [WindowCall("count", ("x",), distinct=True,
                               algorithm="incremental")],
            spec).columns[-1].to_list()
        assert_columns_equal(got, want)

    def test_ostree_rank(self):
        spec = SPECS["centered"]
        kwargs = dict(function="rank", order_by=(OrderItem("y"),))
        want = window_query(TABLE, [WindowCall(**kwargs,
                                               algorithm="naive")],
                            spec).columns[-1].to_list()
        got = window_query(TABLE, [WindowCall(**kwargs,
                                              algorithm="ostree")],
                           spec).columns[-1].to_list()
        assert_columns_equal(got, want)
