"""Thread-pool probe execution must be bit-identical to serial."""

import numpy as np
import pytest

from repro.errors import ParallelExecutionError, ReproError
from repro.mst.tree import MergeSortTree
from repro.mst.vectorized import batched_count, batched_select
from repro.parallel.threads import (
    task_slices,
    threaded_batched_count,
    threaded_batched_select,
    threaded_map,
)


def test_task_slices():
    assert task_slices(10, 4) == [(0, 4), (4, 8), (8, 10)]
    assert task_slices(0, 4) == []
    assert task_slices(4, 4) == [(0, 4)]


def test_threaded_map_orders_results():
    out = threaded_map(lambda lo, hi: np.arange(lo, hi), 23, workers=4,
                       task_size=5)
    assert np.array_equal(out, np.arange(23))


def test_threaded_map_empty():
    out = threaded_map(lambda lo, hi: np.arange(lo, hi), 0, workers=4)
    assert len(out) == 0


@pytest.mark.parametrize("workers", [1, 4])
def test_worker_exception_carries_task_slice(workers):
    def worker(lo, hi):
        if lo == 10:
            raise ValueError("probe blew up")
        return np.arange(lo, hi)

    with pytest.raises(ParallelExecutionError) as info:
        threaded_map(worker, 23, workers=workers, task_size=5)
    assert "[10, 15)" in str(info.value)
    assert "probe blew up" in str(info.value)
    assert info.value.lo == 10 and info.value.hi == 15
    assert isinstance(info.value.__cause__, ValueError)
    # catchable as a library error
    assert isinstance(info.value, ReproError)


@pytest.mark.parametrize("trial", range(4))
def test_multi_failure_report_is_deterministically_ordered(trial):
    # Every task fails, each after a different (seeded) delay, so the
    # threads *complete* in a different order every trial — yet the
    # collected failures must come back sorted by task slice. A barrier
    # makes sure all four tasks have *started* before any fails (a
    # loaded machine could otherwise let fail-fast cancel a task whose
    # thread never dequeued it, which is correct but not this test).
    import random
    import threading
    import time

    delays = {lo: d for lo, d in
              zip(range(0, 20, 5),
                  random.Random(trial).sample([0.0, 0.005, 0.01, 0.02], 4))}
    started = threading.Barrier(4)

    def worker(lo, hi):
        started.wait(timeout=10)
        time.sleep(delays[lo])
        raise ValueError(f"boom in [{lo}, {hi})")

    with pytest.raises(ParallelExecutionError) as info:
        threaded_map(worker, 20, workers=4, task_size=5)
    failures = info.value.failures
    slices = [(f.lo, f.hi) for f in failures]
    assert slices == sorted(slices)
    assert len(failures) == 4  # all started workers were drained
    # The primary error is the lowest slice, not the fastest thread.
    assert (info.value.lo, info.value.hi) == (0, 5)
    assert all(isinstance(f, ParallelExecutionError) for f in failures)


def test_select_worker_exception_carries_task_slice(rng):
    n = 100
    perm = rng.permutation(n)
    tree = MergeSortTree(perm, fanout=2)
    a = np.zeros(n, dtype=np.int64)
    b = np.full(n, n, dtype=np.int64)
    k = np.zeros(n, dtype=np.int64)
    k[60] = n + 5  # out of range -> worker raises inside its slice
    with pytest.raises(ParallelExecutionError) as info:
        threaded_batched_select(tree.levels, k, a, b, workers=2,
                                task_size=25)
    assert info.value.lo == 50 and info.value.hi == 75


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_threaded_count_matches_serial(workers, rng):
    n = 5_000
    keys = rng.integers(-1, n, size=n)
    tree = MergeSortTree(keys, fanout=2)
    lo = rng.integers(0, n, size=n)
    hi = np.minimum(lo + rng.integers(0, n, size=n), n)
    thr = rng.integers(-1, n, size=n)
    serial = batched_count(tree.levels, lo, hi, thr)
    threaded = threaded_batched_count(tree.levels, lo, hi, thr,
                                      workers=workers, task_size=512)
    assert np.array_equal(serial, threaded)


@pytest.mark.parametrize("workers", [1, 3])
def test_threaded_select_matches_serial(workers, rng):
    n = 3_000
    perm = rng.permutation(n)
    tree = MergeSortTree(perm, fanout=2)
    a = rng.integers(0, n, size=n)
    b = np.minimum(a + 1 + rng.integers(0, 200, size=n), n)
    k = np.array([rng.integers(0, bb - aa) for aa, bb in zip(a, b)])
    s_serial, k_serial = batched_select(tree.levels, k, a, b)
    s_thr, k_thr = threaded_batched_select(tree.levels, k, a, b,
                                           workers=workers, task_size=700)
    assert np.array_equal(s_serial, s_thr)
    assert np.array_equal(k_serial, k_thr)
