"""Determinism suite for morsel-driven parallel window execution.

The contract of :mod:`repro.parallel.scheduler` is that parallelism is
*invisible* in results: whatever strategy the scheduler picks
(inter-partition morsels, intra-partition probe fan-out, serial), every
output column is bit-identical to serial evaluation, because each
partition scatters into precomputed global row positions rather than by
completion order. This suite pins that down over partition-count
extremes (1 / 8 / 1000), ROWS / RANGE / GROUPS frames with exclusions,
worker counts 1 / 2 / 4, seeded faults at the ``parallel.morsel`` site,
and cancellation mid-fan-out (which must leave zero pinned cache
entries behind).
"""

import numpy as np
import pytest

from conftest import make_window_table
from repro import Catalog, Session
from repro.cache.store import StructureCache
from repro.errors import (
    ParallelExecutionError,
    ResilienceError,
    flatten_parallel_failures,
)
from repro.parallel.scheduler import (
    INTER_PARTITION,
    INTRA_PARTITION,
    SERIAL,
    WindowScheduler,
    bin_pack,
    resolve_workers,
)
from repro.resilience import (
    CancellationToken,
    ExecutionContext,
    FaultInjector,
    activate,
)
from repro.table import DataType, Table
from repro.window import (
    FrameExclusion,
    FrameSpec,
    WindowCall,
    WindowSpec,
    current_row,
    following,
    preceding,
    unbounded_preceding,
    window_query,
)
from repro.window.frame import FrameMode, OrderItem


def make_table(n_rows: int, n_partitions: int, seed: int) -> Table:
    rng = np.random.default_rng(seed)
    return Table.from_dict({
        "g": (DataType.INT64,
              [int(v) for v in rng.integers(0, n_partitions, n_rows)]),
        "o": (DataType.INT64, [int(v) for v in rng.integers(0, 50, n_rows)]),
        "x": (DataType.INT64,
              [int(v) if rng.random() > 0.1 else None
               for v in rng.integers(0, 12, n_rows)]),
        "y": (DataType.FLOAT64,
              [float(v) for v in rng.normal(size=n_rows)]),
    }, name="t")


def forced(workers: int, **overrides) -> WindowScheduler:
    """A scheduler with thresholds low enough that the small test tables
    actually take the parallel paths."""
    options = dict(workers=workers, min_parallel_ops=0.0,
                   min_intra_rows=64, task_size=256)
    options.update(overrides)
    return WindowScheduler(**options)


FRAMES = [
    FrameSpec.rows(preceding(7), following(2)),
    FrameSpec.range(preceding(5), following(5)),
    FrameSpec.groups(preceding(2), following(2), FrameExclusion.GROUP),
    FrameSpec.rows(unbounded_preceding(), current_row(),
                   FrameExclusion.CURRENT_ROW),
]

CALLS = [
    WindowCall("count", ["x"], distinct=True),
    WindowCall("rank", order_by=(OrderItem("y"),)),
    WindowCall("percentile_disc", ["y"], fraction=0.5),
    WindowCall("sum", ["x"]),
]

#: (rows, partitions): one dominant partition, a balanced handful, and
#: a long tail of tiny ones — the three scheduler regimes.
SHAPES = [(1500, 1), (1200, 8), (1500, 1000)]


def run(table, spec, scheduler=None, cache=None):
    result = window_query(table, CALLS, spec, cache=cache,
                          parallel=scheduler)
    return [result.columns[i].to_list()
            for i in range(-len(CALLS), 0)]


# ----------------------------------------------------------------------
# parallel == serial, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("frame_index", range(len(FRAMES)))
@pytest.mark.parametrize("n_rows,n_partitions", SHAPES)
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_matches_serial_exactly(n_rows, n_partitions, workers,
                                         frame_index):
    table = make_table(n_rows, n_partitions,
                       seed=7 * n_partitions + frame_index)
    spec = WindowSpec(partition_by=("g",), order_by=(OrderItem("o"),),
                      frame=FRAMES[frame_index])
    want = run(table, spec)  # default scheduler, serial in this process
    with forced(workers) as scheduler:
        got = run(table, spec, scheduler=scheduler)
        decision = scheduler.stats().decisions[-1]
    # Bit-identical, not approximately equal.
    assert got == want
    if workers == 1:
        assert decision.strategy == SERIAL
    elif n_partitions == 1:
        assert decision.strategy == INTRA_PARTITION
    else:
        assert decision.strategy == INTER_PARTITION


@pytest.mark.parametrize("seed", range(4))
def test_randomized_specs_match_serial(seed):
    import random

    rng = random.Random(seed)
    table = make_table(rng.choice([400, 900]),
                       rng.choice([1, 8, 200]), seed=seed)
    mode = rng.choice([FrameMode.ROWS, FrameMode.RANGE, FrameMode.GROUPS])
    exclusion = rng.choice(list(FrameExclusion))
    frame = FrameSpec(mode, preceding(rng.randint(0, 9)),
                      following(rng.randint(0, 9)), exclusion)
    spec = WindowSpec(partition_by=("g",), order_by=(OrderItem("o"),),
                      frame=frame)
    want = run(table, spec)
    for workers in (2, 4):
        with forced(workers) as scheduler:
            assert run(table, spec, scheduler=scheduler) == want


def test_unpartitioned_group_is_intra_and_identical():
    table = make_table(2000, 1, seed=3)
    spec = WindowSpec(order_by=(OrderItem("o"),),
                      frame=FrameSpec.rows(preceding(40), following(10)))
    want = run(table, spec)
    with forced(4) as scheduler:
        assert run(table, spec, scheduler=scheduler) == want
        assert scheduler.stats().decisions[-1].strategy == INTRA_PARTITION
        assert scheduler.stats().pool_started


def test_parallel_with_cache_matches_and_unpins(tmp_path):
    table = make_table(1000, 50, seed=11)
    spec = WindowSpec(partition_by=("g",), order_by=(OrderItem("o"),),
                      frame=FrameSpec.rows(preceding(6), current_row()))
    want = run(table, spec)
    with StructureCache(spill_dir=str(tmp_path)) as cache:
        # Pinned to the thread executor: cache hit/pin accounting is a
        # thread-path property (process workers build structures fresh
        # in-child and never touch the parent's cache).
        with forced(4, executor="thread") as scheduler:
            assert run(table, spec, scheduler=scheduler, cache=cache) == want
            # Warm second run: same answer from cached structures.
            assert run(table, spec, scheduler=scheduler, cache=cache) == want
        stats = cache.stats()
        assert stats.hits > 0
        assert stats.pinned_entries == 0


# ----------------------------------------------------------------------
# scheduler decisions
# ----------------------------------------------------------------------
def test_bin_pack_is_deterministic_covers_all_and_sorts_morsels():
    rng = np.random.default_rng(0)
    sizes = rng.integers(1, 500, 137)
    first = bin_pack(sizes, 8)
    second = bin_pack(sizes, 8)
    assert [m.tolist() for m in first] == [m.tolist() for m in second]
    everything = np.concatenate(first)
    assert sorted(everything.tolist()) == list(range(len(sizes)))
    for morsel in first:
        assert morsel.tolist() == sorted(morsel.tolist())
    # LPT keeps the makespan near the mean load.
    loads = [int(sizes[m].sum()) for m in first]
    assert max(loads) < 2 * (int(sizes.sum()) / len(first))


def test_bin_pack_degenerate_shapes():
    assert [m.tolist() for m in bin_pack(np.asarray([5]), 8)] == [[0]]
    assert bin_pack(np.asarray([], dtype=np.int64), 4)[0].tolist() == []


def test_choose_serial_below_threshold_and_reports_reason():
    scheduler = WindowScheduler(workers=4)  # real thresholds
    decision = scheduler.choose([10, 12, 9], n_calls=1)
    assert decision.strategy == SERIAL
    assert "threshold" in decision.reason
    assert not scheduler.stats().pool_started  # decision alone is free


def test_choose_workers_one_never_parallel():
    scheduler = WindowScheduler(workers=1, min_parallel_ops=0.0)
    decision = scheduler.choose([100_000] * 8, n_calls=4)
    assert decision.strategy == SERIAL
    assert decision.reason == "workers=1"


def test_choose_dominant_partition_is_intra():
    scheduler = forced(4)
    decision = scheduler.choose([90_000, 10, 10, 10], n_calls=1)
    assert decision.strategy == INTRA_PARTITION
    assert "%" in decision.reason


def test_choose_dominant_but_tiny_stays_serial():
    scheduler = WindowScheduler(workers=4, min_parallel_ops=0.0,
                                min_intra_rows=1_000_000)
    decision = scheduler.choose([90_000, 10, 10], n_calls=1)
    assert decision.strategy == SERIAL
    assert "too small" in decision.reason


def test_resolve_workers_env(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers() == 1
    monkeypatch.setenv("REPRO_WORKERS", "6")
    assert resolve_workers() == 6
    assert resolve_workers(2) == 2          # argument wins
    monkeypatch.setenv("REPRO_WORKERS", "nope")
    assert resolve_workers() == 1


# ----------------------------------------------------------------------
# faults at parallel.morsel, cancellation, pins
# ----------------------------------------------------------------------
def _ctx(**kwargs) -> ExecutionContext:
    return ExecutionContext(**kwargs)


def test_morsel_fault_surfaces_typed_then_recovers():
    table = make_table(1200, 120, seed=21)
    spec = WindowSpec(partition_by=("g",), order_by=(OrderItem("o"),),
                      frame=FrameSpec.rows(preceding(5), current_row()))
    want = run(table, spec)
    for seed in range(3):
        import random

        rng = random.Random(seed)
        faults = FaultInjector().plan("parallel.morsel",
                                      times=rng.randint(1, 3),
                                      after=rng.randint(0, 2))
        with forced(4) as scheduler:
            with activate(_ctx(faults=faults)):
                with pytest.raises(ParallelExecutionError) as info:
                    run(table, spec, scheduler=scheduler)
                assert "injected" in str(info.value)
                # The storm is finite: the retry completes and matches.
                assert run(table, spec, scheduler=scheduler) == want
        assert faults.fired("parallel.morsel") >= 1


def test_morsel_fault_leaves_no_pinned_cache_entries(tmp_path):
    table = make_table(1000, 100, seed=22)
    spec = WindowSpec(partition_by=("g",), order_by=(OrderItem("o"),),
                      frame=FrameSpec.rows(preceding(5), current_row()))
    faults = FaultInjector().plan("parallel.morsel", times=2, after=1)
    with StructureCache(spill_dir=str(tmp_path)) as cache:
        with forced(4) as scheduler:
            with activate(_ctx(faults=faults)):
                with pytest.raises(ParallelExecutionError):
                    run(table, spec, scheduler=scheduler, cache=cache)
        assert cache.stats().pinned_entries == 0


def test_cancellation_mid_fanout_leaves_no_pins(tmp_path):
    # The injected exception cancels the token from inside a morsel
    # task, so the *other* in-flight morsels see the cancellation at
    # their next checkpoint — a genuine mid-fan-out cancel.
    table = make_table(1000, 100, seed=23)
    spec = WindowSpec(partition_by=("g",), order_by=(OrderItem("o"),),
                      frame=FrameSpec.rows(preceding(5), current_row()))
    token = CancellationToken()

    def cancel_and_fail():
        token.cancel()
        return RuntimeError("injected mid-fan-out cancel")

    faults = FaultInjector().plan("parallel.morsel", times=1, after=2,
                                  exception=cancel_and_fail)
    with StructureCache(spill_dir=str(tmp_path)) as cache:
        with forced(4) as scheduler:
            with activate(_ctx(faults=faults, token=token)):
                with pytest.raises((ParallelExecutionError,
                                    ResilienceError)):
                    run(table, spec, scheduler=scheduler, cache=cache)
        assert token.cancelled
        stats = cache.stats()
        assert stats.pinned_entries == 0
    # And the query is re-runnable after cancellation: fresh context,
    # same bit-identical answer as serial.
    with forced(4) as scheduler:
        assert run(table, spec, scheduler=scheduler) == run(table, spec)


# ----------------------------------------------------------------------
# nested-failure flattening (the bugfix)
# ----------------------------------------------------------------------
def _leaf(lo, hi):
    return ParallelExecutionError(lo, hi, ValueError(f"boom {lo}"))


def test_flatten_expands_nested_wrappers_to_leaves():
    inner = [_leaf(0, 5), _leaf(5, 10)]
    wrapper = ParallelExecutionError(0, 5, ValueError("boom 0"),
                                     failures=inner)
    flat = flatten_parallel_failures([wrapper, _leaf(20, 25)])
    assert [(f.lo, f.hi) for f in flat] == [(0, 5), (5, 10), (20, 25)]
    assert all(f.failures == [f] for f in flat)  # all leaves


def test_flatten_dedups_shared_leaves_and_keeps_first_seen_order():
    a, b = _leaf(0, 5), _leaf(5, 10)
    wrapper = ParallelExecutionError(0, 5, ValueError("x"),
                                     failures=[a, b])
    flat = flatten_parallel_failures([a, wrapper, b])
    assert flat == [a, b]


def test_nested_pool_error_reports_flat_failures():
    # A wrapper-of-wrappers (morsel pool over probe pool) constructed
    # the way _run_tasks does: the resulting error's failures list has
    # no wrapper entries left in it.
    probe_failures = [_leaf(0, 256), _leaf(256, 512)]
    morsel_error = ParallelExecutionError(
        0, 256, ValueError("boom 0"), failures=probe_failures)
    top = ParallelExecutionError(0, 1, morsel_error,
                                 failures=[morsel_error, _leaf(3, 4)])
    assert [(f.lo, f.hi) for f in top.failures] == [(0, 256), (256, 512),
                                                    (3, 4)]
    assert "more worker failure" in str(top)


def test_single_failure_has_self_failures():
    leaf = _leaf(7, 9)
    assert leaf.failures == [leaf]
    assert "(+" not in str(leaf)


# ----------------------------------------------------------------------
# session integration + EXPLAIN
# ----------------------------------------------------------------------
SQL = """
select g, count(distinct x) over w as v
from t
window w as (partition by g order by o
             rows between 6 preceding and current row)
"""


def test_session_workers_and_explain_parallelism():
    catalog = Catalog({"t": make_table(1200, 60, seed=31)})
    with Session(catalog) as serial_session:
        want = serial_session.execute(SQL).column("v").to_list()
    with Session(catalog, workers=2) as session:
        # Lower the thresholds so this small table actually fans out.
        session.parallel = forced(2)
        try:
            got = session.execute(SQL).column("v").to_list()
            assert got == want
            text = session.explain(SQL)
        finally:
            session.parallel.close()
    assert "Parallelism" in text
    assert "workers=2" in text
    assert INTER_PARTITION in text
    assert "morsels" in text


def test_explain_reports_serial_reason_under_real_thresholds():
    catalog = Catalog({"t": make_window_table(n=60, seed=8)})
    with Session(catalog, workers=4) as session:
        session.execute(SQL)
        text = session.explain(SQL)
    assert "Parallelism" in text
    assert SERIAL in text
    assert "threshold" in text


def test_session_without_workers_stays_serial_and_quiet(monkeypatch):
    # "No workers configured anywhere" — neutralise the CI matrix's
    # global REPRO_WORKERS so the env default cannot leak in.
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    catalog = Catalog({"t": make_window_table(n=60, seed=9)})
    with Session(catalog) as session:
        session.execute(SQL)
        assert not session.parallel.stats().pool_started
        assert "Parallelism" not in session.explain(SQL)


def test_concurrent_queries_share_one_bounded_pool():
    # max_concurrent x workers must not oversubscribe: every admitted
    # query funnels into the same 2-thread pool.
    import threading

    catalog = Catalog({"t": make_table(1200, 60, seed=33)})
    with Session(catalog) as serial_session:
        want = serial_session.execute(SQL).column("v").to_list()
    with Session(catalog, max_concurrent=4) as session:
        session.parallel = forced(2)
        try:
            problems = []

            def work():
                try:
                    got = session.execute(SQL).column("v").to_list()
                    if got != want:
                        problems.append("wrong result")
                except Exception as exc:  # pragma: no cover - diagnostic
                    problems.append(repr(exc))

            threads = [threading.Thread(target=work) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert problems == []
            pool = session.parallel.pool()
            assert pool._max_workers == 2
        finally:
            session.parallel.close()
