"""Columnar table substrate: columns, schemas, tables, CSV."""

import datetime

import numpy as np
import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.table import Column, DataType, Schema, Table
from repro.table.column import date_to_ordinal, ordinal_to_date
from repro.table.csvio import read_csv, write_csv


class TestColumn:
    def test_int_column(self):
        col = Column(DataType.INT64, [1, 2, None, 4])
        assert len(col) == 4
        assert col[0] == 1
        assert col[2] is None
        assert col.null_count == 1
        assert col.to_list() == [1, 2, None, 4]

    def test_type_enforcement(self):
        col = Column(DataType.INT64)
        with pytest.raises(TypeMismatchError):
            col.append("nope")
        with pytest.raises(TypeMismatchError):
            col.append(1.5)
        with pytest.raises(TypeMismatchError):
            col.append(True)  # bools are not ints in SQL
        with pytest.raises(TypeMismatchError):
            Column(DataType.STRING, [42])
        with pytest.raises(TypeMismatchError):
            Column(DataType.BOOL, [1])

    def test_float_accepts_ints(self):
        col = Column(DataType.FLOAT64, [1, 2.5])
        assert col.to_list() == [1.0, 2.5]

    def test_date_roundtrip(self):
        day = datetime.date(2022, 6, 12)  # SIGMOD '22
        col = Column(DataType.DATE, [day, None])
        assert col[0] == day
        assert col[1] is None
        assert col.physical(0) == date_to_ordinal(day)
        assert ordinal_to_date(date_to_ordinal(day)) == day

    def test_from_numpy(self):
        col = Column.from_numpy(DataType.INT64, np.arange(5))
        assert col.to_list() == [0, 1, 2, 3, 4]
        with pytest.raises(TypeMismatchError):
            Column.from_numpy(DataType.STRING, np.arange(3))
        with pytest.raises(TypeMismatchError):
            Column.from_numpy(DataType.INT64, np.arange(3),
                              valid=np.array([True]))

    def test_take(self):
        col = Column(DataType.STRING, ["a", None, "c"])
        taken = col.take([2, 0])
        assert taken.to_list() == ["c", "a"]

    def test_slice_and_iter(self):
        col = Column(DataType.INT64, [10, 20, 30])
        assert col[0:2] == [10, 20]
        assert list(col) == [10, 20, 30]

    def test_equality_and_repr(self):
        a = Column(DataType.INT64, [1, 2])
        b = Column(DataType.INT64, [1, 2])
        assert a == b
        assert "Column" in repr(a)


class TestSchema:
    def test_lookup(self):
        schema = Schema.of(("A", DataType.INT64), ("b", DataType.STRING))
        assert schema.index_of("a") == 0
        assert schema.index_of("B") == 1
        assert "a" in schema and "missing" not in schema
        assert schema.names() == ["A", "b"]

    def test_duplicate_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(("x", DataType.INT64), ("X", DataType.INT64))

    def test_missing_column(self):
        schema = Schema.of(("x", DataType.INT64))
        with pytest.raises(SchemaError):
            schema.index_of("y")


class TestTable:
    def _table(self):
        return Table.from_dict({
            "id": (DataType.INT64, [1, 2, 3]),
            "name": (DataType.STRING, ["x", "y", None]),
        }, name="t")

    def test_from_rows(self):
        schema = Schema.of(("a", DataType.INT64), ("b", DataType.FLOAT64))
        table = Table.from_rows(schema, [(1, 1.5), (2, None)])
        assert table.num_rows == 2
        assert table.row(1) == (2, None)

    def test_row_width_checked(self):
        schema = Schema.of(("a", DataType.INT64))
        table = Table(schema)
        with pytest.raises(SchemaError):
            table.append_row((1, 2))

    def test_mismatched_columns_rejected(self):
        schema = Schema.of(("a", DataType.INT64), ("b", DataType.INT64))
        with pytest.raises(SchemaError):
            Table.from_columns(schema, [Column(DataType.INT64, [1])])
        with pytest.raises(SchemaError):
            Table.from_columns(schema, [Column(DataType.INT64, [1]),
                                        Column(DataType.INT64, [1, 2])])
        with pytest.raises(SchemaError):
            Table.from_columns(schema, [Column(DataType.INT64, [1]),
                                        Column(DataType.STRING, ["x"])])

    def test_take_select_filter(self):
        table = self._table()
        assert table.take([2, 0]).column("id").to_list() == [3, 1]
        assert table.select(["name"]).schema.names() == ["name"]
        filtered = table.filter([True, False, True])
        assert filtered.column("id").to_list() == [1, 3]

    def test_head_and_pretty(self):
        table = self._table()
        assert table.head(2).num_rows == 2
        text = table.pretty()
        assert "id" in text and "name" in text

    def test_equality(self):
        assert self._table() == self._table()

    def test_rows_iteration(self):
        assert list(self._table().rows()) == [(1, "x"), (2, "y"), (3, None)]


class TestCsv:
    def test_roundtrip(self, tmp_path):
        schema = Schema.of(
            ("i", DataType.INT64), ("f", DataType.FLOAT64),
            ("s", DataType.STRING), ("d", DataType.DATE),
            ("b", DataType.BOOL))
        table = Table.from_rows(schema, [
            (1, 2.5, "hello", datetime.date(2020, 1, 1), True),
            (None, None, None, None, None),
            (-7, 0.0, "with,comma", datetime.date(1999, 12, 31), False),
        ])
        path = tmp_path / "t.csv"
        write_csv(table, path)
        back = read_csv(path, schema)
        assert back.to_rows() == table.to_rows()

    def test_wrong_width_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(SchemaError):
            read_csv(path, Schema.of(("a", DataType.INT64),
                                     ("b", DataType.INT64)))

    def test_bool_parsing(self, tmp_path):
        path = tmp_path / "b.csv"
        path.write_text("b\ntrue\nf\n1\n")
        table = read_csv(path, Schema.of(("b", DataType.BOOL)))
        assert table.column("b").to_list() == [True, False, True]
        path.write_text("b\nmaybe\n")
        with pytest.raises(SchemaError):
            read_csv(path, Schema.of(("b", DataType.BOOL)))
