"""Additional SQL executor coverage: scalar functions, edge cases,
uncorrelated-subquery caching, mixed features."""

import datetime

import pytest

from repro.errors import SqlAnalysisError
from repro.sql import Catalog, execute
from repro.table import DataType, Table


@pytest.fixture
def catalog():
    t = Table.from_dict({
        "i": (DataType.INT64, [3, 1, 2, None]),
        "f": (DataType.FLOAT64, [1.5, -2.5, 0.0, 4.0]),
        "s": (DataType.STRING, ["Ab", "cd", None, "ef"]),
        "d": (DataType.DATE, [datetime.date(2021, 3, 14), None,
                              datetime.date(2020, 12, 31),
                              datetime.date(2021, 1, 1)]),
        "b": (DataType.BOOL, [True, False, None, True]),
    })
    return Catalog({"t": t})


class TestScalarFunctions:
    def test_string_functions(self, catalog):
        out = execute("select lower(s), upper(s), length(s) from t "
                      "where s is not null order by s", catalog)
        assert out.row(0) == ("ab", "AB", 2)

    def test_concat_operator(self, catalog):
        out = execute("select s || '!' from t where i = 3", catalog)
        assert out.row(0) == ("Ab!",)

    def test_least_greatest(self, catalog):
        out = execute("select least(f, 0.5), greatest(f, 0.5) from t "
                      "where i = 3", catalog)
        assert out.row(0) == (0.5, 1.5)

    def test_year_and_date_arithmetic(self, catalog):
        out = execute("select year(d), d + 10, d - d from t where i = 3",
                      catalog)
        assert out.row(0) == (2021, datetime.date(2021, 3, 24), 0)

    def test_date_diff_days(self, catalog):
        out = execute("select d - date '2021-03-04' from t where i = 3",
                      catalog)
        assert out.row(0) == (10,)

    def test_interval_in_expression(self, catalog):
        out = execute("select d + interval '1 week' from t where i = 3",
                      catalog)
        assert out.row(0) == (datetime.date(2021, 3, 21),)

    def test_wrong_arity(self, catalog):
        with pytest.raises(SqlAnalysisError):
            execute("select abs(i, f) from t", catalog)

    def test_round_default_digits(self, catalog):
        out = execute("select round(f) from t where i = 3", catalog)
        assert out.row(0) == (2.0,)


class TestEdgeCases:
    def test_boolean_column_in_where(self, catalog):
        out = execute("select i from t where b order by i", catalog)
        assert out.column("i").to_list() == [3, None]

    def test_case_with_operand(self, catalog):
        out = execute("""
            select case i when 1 then 'one' when 2 then 'two'
                   else 'many' end from t order by i nulls last
        """, catalog)
        assert out.columns[0].to_list() == ["one", "two", "many", "many"]

    def test_in_with_null_probe(self, catalog):
        out = execute("select count(*) from t where i in (1, 2, 3)",
                      catalog)
        assert out.row(0) == (3,)  # NULL never matches IN

    def test_not_between(self, catalog):
        out = execute("select i from t where i not between 1 and 2 "
                      "order by i", catalog)
        assert out.column("i").to_list() == [3]

    def test_nested_parens_and_precedence(self, catalog):
        out = execute("select (1 + 2) * 3 - -4", catalog)
        assert out.row(0) == (13,)

    def test_division_null_on_zero(self, catalog):
        out = execute("select f / 0 from t where i = 3", catalog)
        assert out.row(0) == (None,)

    def test_limit_zero(self, catalog):
        out = execute("select i from t limit 0", catalog)
        assert out.num_rows == 0

    def test_empty_result_propagates_schema(self, catalog):
        out = execute("select i as renamed from t where 1 = 2", catalog)
        assert out.schema.names() == ["renamed"]
        assert out.num_rows == 0

    def test_duplicate_output_names_uniquified(self, catalog):
        out = execute("select i, i from t limit 1", catalog)
        assert out.schema.names() == ["i", "i_1"]

    def test_semicolon_and_comments(self, catalog):
        out = execute("select 1 -- trailing\n;", catalog)
        assert out.row(0) == (1,)


class TestSubqueryBehaviour:
    def test_uncorrelated_subquery_executes_once(self, catalog, monkeypatch):
        """The probe-based correlation detection must broadcast a single
        execution for uncorrelated subqueries."""
        import repro.sql.executor as executor_module
        calls = {"n": 0}
        original = executor_module.execute_select

        def counting(stmt, ctx):
            calls["n"] += 1
            return original(stmt, ctx)

        monkeypatch.setattr(executor_module, "execute_select", counting)
        execute("select i, (select max(f) from t) from t", catalog)
        # 1 outer + 1 probe for the subquery (not one per row)
        assert calls["n"] == 2

    def test_correlated_subquery_runs_per_row(self, catalog):
        out = execute("""
            select i, (select count(*) from t t2 where t2.i < t1.i) below
            from t t1 order by i nulls last
        """, catalog)
        assert out.column("below").to_list() == [0, 1, 2, 0]

    def test_exists_negated(self, catalog):
        out = execute("""
            select count(*) from t t1
            where not exists (select 1 from t t2 where t2.i > t1.i)
        """, catalog)
        # rows with no larger i: i=3, and i=NULL (comparison yields NULL)
        assert out.row(0) == (2,)


class TestMixedFeatures:
    def test_window_over_join_result(self, catalog):
        t2 = Table.from_dict({
            "i": (DataType.INT64, [1, 2, 3]),
            "w": (DataType.INT64, [10, 20, 30]),
        })
        cat = Catalog({"t": execute("select i, f from t where i is not "
                                    "null", catalog), "t2": t2})
        out = execute("""
            select a.i, sum(b.w) over (order by a.i) running
            from t a join t2 b on a.i = b.i
            order by a.i
        """, cat)
        assert out.column("running").to_list() == [10, 30, 60]

    def test_derived_table_with_window_then_aggregate(self, catalog):
        out = execute("""
            select max(rn) from (
              select row_number() over (order by i nulls last) as rn
              from t) sub
        """, catalog)
        assert out.row(0) == (4,)

    def test_distinct_on_expressions(self, catalog):
        out = execute("select distinct i is null from t", catalog)
        assert sorted(out.columns[0].to_list()) == [False, True]


class TestLike:
    def _catalog(self):
        t = Table.from_dict({
            "s": (DataType.STRING,
                  ["hello", "help", "world", "a.b", "axb", None]),
        })
        return Catalog({"t": t})

    def test_prefix_wildcard(self):
        out = execute("select s from t where s like 'hel%' order by s",
                      self._catalog())
        assert out.column("s").to_list() == ["hello", "help"]

    def test_underscore_matches_one_char(self):
        out = execute("select s from t where s like 'h_lp'",
                      self._catalog())
        assert out.column("s").to_list() == ["help"]

    def test_regex_metacharacters_escaped(self):
        out = execute("select s from t where s like 'a.b'",
                      self._catalog())
        assert out.column("s").to_list() == ["a.b"]

    def test_not_like(self):
        out = execute("select s from t where s not like '%l%' order by s",
                      self._catalog())
        assert out.column("s").to_list() == ["a.b", "axb"]

    def test_null_never_matches(self):
        out = execute("select count(*) from t where s like '%'",
                      self._catalog())
        assert out.row(0) == (5,)

    def test_like_on_numbers_rejected(self):
        t = Table.from_dict({"i": (DataType.INT64, [1])})
        with pytest.raises(SqlAnalysisError):
            execute("select i from t where i like '1%'",
                    Catalog({"t": t}))

    def test_like_in_explain(self):
        from repro.sql import explain
        plan = explain("select * from t where s like 'x%'")
        assert "like 'x%'" in plan
