"""Batched (numpy) queries must agree with the scalar tree everywhere."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mst import SUM, MergeSortTree
from repro.mst.vectorized import (
    batched_aggregate,
    batched_count,
    batched_lower_bound,
    batched_select,
)


class TestBatchedLowerBound:
    def test_matches_searchsorted_within_runs(self, rng):
        arr = np.sort(rng.integers(0, 100, size=64))
        m = 200
        start = rng.integers(0, 64, size=m)
        stop = np.minimum(start + rng.integers(0, 64, size=m), 64)
        target = rng.integers(-5, 105, size=m)
        got = batched_lower_bound(arr, start, stop, target)
        for i in range(m):
            want = start[i] + np.searchsorted(arr[start[i]:stop[i]],
                                              target[i], side="left")
            assert got[i] == want

    def test_empty_queries(self):
        arr = np.arange(10)
        out = batched_lower_bound(arr, np.array([3]), np.array([3]),
                                  np.array([5]))
        assert out[0] == 3

    def test_no_queries(self):
        arr = np.arange(10)
        empty = np.array([], dtype=np.int64)
        assert len(batched_lower_bound(arr, empty, empty, empty)) == 0


class TestBatchedCount:
    @pytest.mark.parametrize("fanout", [2, 3, 8])
    def test_agrees_with_scalar(self, fanout, rng):
        n = 200
        keys = rng.integers(-1, n, size=n)
        tree = MergeSortTree(keys, fanout=fanout)
        m = 150
        lo = rng.integers(0, n + 1, size=m)
        hi = np.minimum(lo + rng.integers(0, n, size=m), n)
        thr = rng.integers(-3, n + 3, size=m)
        got = batched_count(tree.levels, lo, hi, thr)
        for i in range(m):
            assert got[i] == tree.count_below(int(lo[i]), int(hi[i]),
                                              int(thr[i]))

    def test_with_key_lower_bound(self, rng):
        n = 120
        keys = rng.integers(0, 40, size=n)
        tree = MergeSortTree(keys, fanout=2)
        m = 80
        lo = rng.integers(0, n, size=m)
        hi = np.minimum(lo + rng.integers(0, n, size=m), n)
        klo = rng.integers(0, 20, size=m)
        khi = klo + rng.integers(0, 25, size=m)
        got = batched_count(tree.levels, lo, hi, khi, key_lo=klo)
        for i in range(m):
            want = tree.count([(int(lo[i]), int(hi[i]))],
                              [(int(klo[i]), int(khi[i]))])
            assert got[i] == want


class TestBatchedSelect:
    @pytest.mark.parametrize("fanout", [2, 4])
    def test_agrees_with_scalar(self, fanout, rng):
        n = 150
        perm = rng.permutation(n)
        tree = MergeSortTree(perm, fanout=fanout)
        m = 120
        a = rng.integers(0, n, size=m)
        b = np.minimum(a + 1 + rng.integers(0, 60, size=m), n)
        k = np.array([rng.integers(0, bb - aa) for aa, bb in zip(a, b)])
        slabs, keys = batched_select(tree.levels, k, a, b)
        for i in range(m):
            want = tree.select(int(k[i]), [(int(a[i]), int(b[i]))])
            assert (int(slabs[i]), int(keys[i])) == want

    def test_single_row_tree(self):
        tree = MergeSortTree(np.array([0]))
        slabs, keys = batched_select(tree.levels, np.array([0]),
                                     np.array([0]), np.array([1]))
        assert slabs[0] == 0 and keys[0] == 0


class TestBatchedAggregate:
    @pytest.mark.parametrize("kind,reducer", [
        ("sum", sum), ("min", min), ("max", max),
    ])
    def test_agrees_with_oracle(self, kind, reducer, rng):
        n = 130
        keys = rng.integers(-1, n, size=n)
        payload = rng.integers(0, 50, size=n).astype(np.float64)
        tree = MergeSortTree(keys, fanout=2, aggregate=SUM, payload=payload)
        m = 100
        lo = rng.integers(0, n, size=m)
        hi = np.minimum(lo + rng.integers(0, n, size=m), n)
        thr = rng.integers(-1, n + 1, size=m)
        if kind in ("min", "max"):
            # min/max need their own prefix kernels
            from repro.mst import MAX, MIN
            spec = MIN if kind == "min" else MAX
            tree = MergeSortTree(keys, fanout=2, aggregate=spec,
                                 payload=payload)
        got = batched_aggregate(tree.levels, lo, hi, thr, kind)
        for i in range(m):
            expected = [payload[j] for j in range(lo[i], hi[i])
                        if keys[j] < thr[i]]
            if expected:
                assert got[i] == pytest.approx(reducer(expected))
            else:
                identity = {"sum": 0.0, "min": np.inf,
                            "max": -np.inf}[kind]
                assert got[i] == identity

    def test_count_kind(self, rng):
        n = 60
        keys = rng.integers(0, 20, size=n)
        from repro.mst import COUNT
        payload = np.ones(n)
        tree = MergeSortTree(keys, fanout=2, aggregate=COUNT,
                             payload=payload)
        got = batched_aggregate(tree.levels, np.array([0]), np.array([n]),
                                np.array([10]), "count")
        assert got[0] == int(np.sum(keys < 10))

    def test_unknown_kind_rejected(self, rng):
        keys = rng.integers(0, 5, size=10)
        tree = MergeSortTree(keys, aggregate=SUM,
                             payload=np.ones(10))
        with pytest.raises(ValueError):
            batched_aggregate(tree.levels, np.array([0]), np.array([10]),
                              np.array([3]), "median")

    def test_missing_annotation_rejected(self, rng):
        tree = MergeSortTree(rng.integers(0, 5, size=10))
        with pytest.raises(ValueError):
            batched_aggregate(tree.levels, np.array([0]), np.array([10]),
                              np.array([3]), "sum")


@given(
    seed=st.integers(0, 100_000),
    n=st.integers(1, 200),
    fanout=st.sampled_from([2, 3, 8]),
)
@settings(max_examples=60, deadline=None)
def test_batched_count_hypothesis(seed, n, fanout):
    rng = np.random.default_rng(seed)
    keys = rng.integers(-1, n, size=n)
    tree = MergeSortTree(keys, fanout=fanout)
    m = 20
    lo = rng.integers(0, n + 1, size=m)
    hi = np.minimum(lo + rng.integers(0, n, size=m), n)
    thr = rng.integers(-2, n + 2, size=m)
    got = batched_count(tree.levels, lo, hi, thr)
    want = np.array([int(np.sum(keys[l:h] < t))
                     for l, h, t in zip(lo, hi, thr)])
    assert np.array_equal(got, want)
