"""Chaos/soak harness: concurrent sessions under seeded fault storms.

The acceptance property for the resilience stack as a whole: with
worker threads hammering one :class:`~repro.Session` through the
gateway while a *seeded* fault schedule fails structure builds, spill
writes, spill reloads and evictions underneath them, every query either
returns exactly the healthy oracle's answer or fails with a typed
resilience error — never a wrong result, never an untyped crash, never
a wedged slot. Tripped circuit breakers must recover (half-open →
closed) once the faults stop, within the test.

The schedule derives from ``CHAOS_SEED`` (default 0); CI sweeps several
seeds so different interleavings of fault-vs-query are exercised, and
any failure reproduces by exporting the same seed.
"""

import os
import random
import threading
import time

import pytest

from conftest import make_window_table
from repro import Catalog, Session
from repro.errors import ResilienceError
from repro.resilience import CLOSED, FaultInjector

SEED = int(os.environ.get("CHAOS_SEED", "0"))

#: Concurrent client threads in the main soak (CI runs 4-thread sweeps
#: across several seeds; the default exercises 2x the gateway slots).
WORKERS = int(os.environ.get("CHAOS_WORKERS", "8"))

#: Sites whose failures the engine absorbs by degrading (fallback,
#: drop, rebuild) — a fault here must never surface to the caller.
ABSORBED_SITES = ("structure.build", "spill.write", "spill.read",
                  "cache.evict", "cache.reload")

QUERIES = [
    """
    select g, count(distinct x) over w as v
    from t
    window w as (partition by g order by o
                 rows between 15 preceding and current row)
    """,
    """
    select g, percentile_disc(0.5, order by x) over w as v
    from t
    window w as (partition by g order by o
                 rows between 10 preceding and 2 following)
    """,
    """
    select g, sum(distinct x) over w as v
    from t
    window w as (partition by g order by o
                 rows between 8 preceding and current row)
    """,
    """
    select g, rank(order by y desc) over w as v
    from t
    window w as (partition by g order by o
                 rows between 12 preceding and current row)
    """,
]


def _schedule(seed):
    """A seeded, repeatable storm: every absorbed site fails in several
    bursts at pseudo-random offsets."""
    rng = random.Random(seed)
    faults = FaultInjector()
    for site in ABSORBED_SITES:
        faults.plan(site, times=rng.randint(2, 6),
                    after=rng.randint(0, 4))
    return faults


def _expected(catalog):
    with Session(catalog) as healthy:
        return [healthy.execute(sql).column("v").to_list()
                for sql in QUERIES]


def _soak(session, expected, workers=8, rounds=3):
    """Run every query ``rounds`` times from each of ``workers``
    threads; collect wrong results and unexpected error types."""
    problems = []
    lock = threading.Lock()
    barrier = threading.Barrier(workers)

    def work(worker):
        rng = random.Random(SEED * 1009 + worker)
        barrier.wait()
        for round_ in range(rounds):
            for index in rng.sample(range(len(QUERIES)), len(QUERIES)):
                priority = rng.choice(["interactive", "batch"])
                try:
                    table = session.execute(QUERIES[index],
                                            priority=priority)
                except ResilienceError:
                    continue  # typed degradation is an allowed outcome
                except Exception as exc:
                    with lock:
                        problems.append(
                            f"worker {worker} round {round_} query "
                            f"{index}: untyped {type(exc).__name__}: {exc}")
                    continue
                values = table.column("v").to_list()
                if values != expected[index]:
                    with lock:
                        problems.append(
                            f"worker {worker} round {round_} query "
                            f"{index}: WRONG RESULT")

    threads = [threading.Thread(target=work, args=(w,), daemon=True)
               for w in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    return problems


def test_soak_under_seeded_fault_storm_returns_no_wrong_results():
    catalog = Catalog({"t": make_window_table(n=200, seed=5)})
    expected = _expected(catalog)
    faults = _schedule(SEED)
    with Session(catalog, faults=faults, budget_bytes=200_000,
                 max_concurrent=4, max_queue=64,
                 breaker_threshold=3, breaker_reset=0.05,
                 verify_rate=0.1, verify_seed=SEED) as session:
        problems = _soak(session, expected, workers=WORKERS, rounds=3)
        assert problems == []

        # Nothing was shed (the queue was sized for the load) and every
        # admitted query released its slot.
        stats = session.gateway.stats()
        assert stats.active == 0
        assert stats.admitted == stats.completed == WORKERS * 3 * len(QUERIES)
        assert stats.peak_active <= 4
        assert stats.shed == 0

        # The storm really happened.
        fired = sum(faults.fired(site) for site in ABSORBED_SITES)
        assert fired > 0

        # Heal the world: any breaker the storm tripped must recover
        # through half-open within the test.
        faults.clear()
        tripped = [snap.name for snap in session.breakers.snapshots()
                   if snap.trips]
        time.sleep(0.06)  # let breaker_reset elapse
        problems = _soak(session, expected, workers=4, rounds=1)
        assert problems == []
        for snap in session.breakers.snapshots():
            if snap.name in tripped:
                assert snap.state == CLOSED, snap.render()
                assert snap.recoveries >= 1, snap.render()

        # Telemetry tells the story afterwards.
        health = session.health_stats()
        assert health.faults > 0
        text = session.explain(QUERIES[0])
        assert "Gateway" in text


def test_soak_with_saturation_sheds_typed_and_stays_correct():
    # An undersized gateway under the same storm: shedding is allowed
    # (it is typed), wrong results still are not.
    catalog = Catalog({"t": make_window_table(n=120, seed=6)})
    expected = _expected(catalog)
    faults = _schedule(SEED + 1)
    with Session(catalog, faults=faults, max_concurrent=1, max_queue=1,
                 breaker_threshold=3, breaker_reset=0.05,
                 verify_rate=0.05, verify_seed=SEED) as session:
        problems = _soak(session, expected, workers=6, rounds=2)
        assert problems == []
        stats = session.gateway.stats()
        assert stats.active == 0
        assert stats.admitted == stats.completed
        assert stats.admitted + stats.shed == 6 * 2 * len(QUERIES)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_fault_schedules_vary_with_the_seed(seed):
    ours = [(site, plan.times, plan.after)
            for site, plan in sorted(_schedule(seed)._plans.items())]
    again = [(site, plan.times, plan.after)
             for site, plan in sorted(_schedule(seed)._plans.items())]
    assert ours == again  # same seed, same storm
