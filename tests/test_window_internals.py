"""Targeted tests for evaluator plumbing and the trickiest corrections."""

import numpy as np

from conftest import assert_columns_equal
from repro.table import DataType, Table
from repro.window import (
    FrameExclusion,
    FrameSpec,
    WindowCall,
    WindowSpec,
        following,
    preceding,
    window_query,
)
from repro.window.bounds import PeerGroups, exclusion_ranges
from repro.window.calls import WindowCall as WC
from repro.window.evaluators.common import CallInput, keep_mask
from repro.window.frame import OrderItem
from repro.window.partition import PartitionView


def _partition(columns, n, frame=None, exclusion=FrameExclusion.NO_OTHERS):
    start = np.zeros(n, dtype=np.int64)
    end = np.full(n, n, dtype=np.int64)
    peers = PeerGroups(np.arange(n))
    pieces = exclusion_ranges(start, end, exclusion, peers)
    pieces = [(np.asarray(lo), np.asarray(hi)) for lo, hi in pieces]
    holes = []
    if exclusion is FrameExclusion.CURRENT_ROW:
        i = np.arange(n)
        holes = [(np.clip(i, start, end), np.clip(i + 1, start, end))]
    return PartitionView(columns, n, start, end, pieces, holes, peers,
                         exclusion)


class TestKeepMask:
    def _columns(self):
        return {
            "x": (np.array([1, 2, 3, 4]),
                  np.array([True, False, True, True])),
            "f": (np.array([True, True, False, True]),
                  np.array([True, True, True, False])),
        }

    def test_filter_and_null_skipping(self):
        part = _partition(self._columns(), 4)
        call = WC("count", ("x",), filter_where="f")
        mask = keep_mask(call, part, skip_null_arg=True)
        # row1: null x; row2: filter false; row3: filter NULL
        assert mask.tolist() == [True, False, False, False]

    def test_no_filter(self):
        part = _partition(self._columns(), 4)
        call = WC("count", ("x",))
        assert keep_mask(call, part, skip_null_arg=False).tolist() == \
            [True] * 4


class TestCallInput:
    def test_filtered_bounds(self):
        columns = {"x": (np.array([1, 2, 3, 4, 5]),
                         np.array([True, False, True, False, True]))}
        part = _partition(columns, 5)
        call = WC("count", ("x",))
        inputs = CallInput(call, part, skip_null_arg=True)
        assert inputs.n_kept == 3
        assert inputs.start_f.tolist() == [0] * 5
        assert inputs.end_f.tolist() == [3] * 5
        assert inputs.frame_counts().tolist() == [3] * 5
        assert list(inputs.kept_values("x")) == [1, 3, 5]

    def test_row_pieces_skip_empty(self):
        columns = {"x": (np.arange(3), np.ones(3, dtype=np.bool_))}
        part = _partition(columns, 3,
                          exclusion=FrameExclusion.CURRENT_ROW)
        call = WC("count", ("x",))
        inputs = CallInput(call, part, skip_null_arg=False)
        # row 0: frame [0,3) minus row 0 = [1,3) — one piece
        assert inputs.row_pieces_f(0) == [(1, 3)]
        # row 1: [0,1) and [2,3)
        assert inputs.row_pieces_f(1) == [(0, 1), (2, 3)]


class TestDistinctHoleChaining:
    """The exact Section 4.7 correction: previous-occurrence pointers
    chaining through EXCLUDE holes must not double-count."""

    def _run(self, values, order, exclusion, frame=(3, 3)):
        n = len(values)
        table = Table.from_dict({
            "o": (DataType.INT64, order),
            "x": (DataType.INT64, values),
        })
        spec = WindowSpec(order_by=(OrderItem("o"),),
                          frame=FrameSpec.rows(preceding(frame[0]),
                                               following(frame[1]),
                                               exclusion))
        got = window_query(
            table, [WindowCall("count", ("x",), distinct=True,
                               algorithm="mst")], spec).columns[-1].to_list()
        want = window_query(
            table, [WindowCall("count", ("x",), distinct=True,
                               algorithm="naive")],
            spec).columns[-1].to_list()
        assert got == want
        return got

    def test_value_repeats_through_current_row_hole(self):
        # value 7 occurs before, AT, and after the excluded current row:
        # the chain through the hole must still count 7 exactly once
        values = [7, 7, 7, 5, 7]
        self._run(values, list(range(5)), FrameExclusion.CURRENT_ROW)

    def test_value_only_in_hole(self):
        # value 9 occurs only at the excluded row -> must vanish
        values = [1, 2, 9, 3, 4]
        got = self._run(values, list(range(5)),
                        FrameExclusion.CURRENT_ROW)
        assert got[2] == 4  # 1,2,3,4 without 9

    def test_group_exclusion_with_duplicate_peer_values(self):
        # peers (equal o) all excluded; their values occur elsewhere too
        values = [3, 3, 3, 8, 8]
        order = [1, 2, 2, 2, 3]
        self._run(values, order, FrameExclusion.GROUP)

    def test_ties_keep_current_row(self):
        values = [4, 4, 4, 4]
        order = [1, 2, 2, 3]
        self._run(values, order, FrameExclusion.TIES)

    def test_exhaustive_small_grid(self):
        rng = np.random.default_rng(0)
        for trial in range(30):
            n = int(rng.integers(2, 14))
            values = rng.integers(0, 3, size=n).tolist()
            order = rng.integers(0, 4, size=n).tolist()
            exclusion = [FrameExclusion.CURRENT_ROW, FrameExclusion.GROUP,
                         FrameExclusion.TIES][trial % 3]
            self._run(values, order, exclusion, frame=(2, 2))


class TestSumDistinctCorrections:
    def test_sum_subtracts_hole_only_values(self):
        table = Table.from_dict({
            "o": (DataType.INT64, [1, 2, 3]),
            "x": (DataType.INT64, [10, 99, 10]),
        })
        spec = WindowSpec(order_by=(OrderItem("o"),),
                          frame=FrameSpec.rows(
                              preceding(5), following(5),
                              FrameExclusion.CURRENT_ROW))
        got = window_query(
            table, [WindowCall("sum", ("x",), distinct=True)],
            spec).columns[-1].to_list()
        # row 1 excludes the only 99 -> distinct sum = 10
        assert got == [109, 10, 109]

    def test_avg_distinct_with_exclusion_matches_naive(self, rng):
        n = 40
        table = Table.from_dict({
            "o": (DataType.INT64, [int(v) for v in rng.integers(0, 9, n)]),
            "x": (DataType.INT64, [int(v) for v in rng.integers(0, 4, n)]),
        })
        spec = WindowSpec(order_by=(OrderItem("o"),),
                          frame=FrameSpec.rows(preceding(6), following(6),
                                               FrameExclusion.GROUP))
        got = window_query(
            table, [WindowCall("avg", ("x",), distinct=True,
                               algorithm="mst")], spec).columns[-1].to_list()
        want = window_query(
            table, [WindowCall("avg", ("x",), distinct=True,
                               algorithm="naive")],
            spec).columns[-1].to_list()
        assert_columns_equal(got, want)
