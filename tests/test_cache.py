"""Unit tests for the structure cache: fingerprints, budget, store."""

import threading

import numpy as np
import pytest

from conftest import make_window_table
from repro.cache.budget import (
    MemoryBudget,
    StructureSizeBreakdown,
    structure_breakdown,
    structure_bytes,
)
from repro.cache.fingerprint import (
    column_fingerprint,
    involved_columns,
    spec_signature,
    table_fingerprint,
    window_group_key,
)
from repro.cache.store import StructureAcquirer, StructureCache
from repro.mst.aggregates import SUM
from repro.mst.tree import MergeSortTree
from repro.segtree.tree import SegmentTree
from repro.table import Column, DataType, Table
from repro.window.calls import WindowCall
from repro.window.frame import (
    FrameSpec,
    OrderItem,
    WindowSpec,
    current_row,
    preceding,
)


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
def test_column_fingerprint_deterministic():
    a = Column(DataType.INT64, [1, 2, None, 4])
    b = Column(DataType.INT64, [1, 2, None, 4])
    assert column_fingerprint(a) == column_fingerprint(b)


def test_column_fingerprint_sensitive_to_values():
    a = Column(DataType.INT64, [1, 2, 3])
    b = Column(DataType.INT64, [1, 2, 4])
    assert column_fingerprint(a) != column_fingerprint(b)


def test_column_fingerprint_sensitive_to_validity():
    a = Column(DataType.INT64, [1, 2, 3])
    b = Column(DataType.INT64, [1, 2, None])
    assert column_fingerprint(a) != column_fingerprint(b)


def test_column_fingerprint_sensitive_to_dtype():
    a = Column(DataType.INT64, [1, 2, 3])
    b = Column(DataType.FLOAT64, [1.0, 2.0, 3.0])
    assert column_fingerprint(a) != column_fingerprint(b)


def test_column_fingerprint_string_columns():
    a = Column(DataType.STRING, ["x", "y", None])
    b = Column(DataType.STRING, ["x", "y", None])
    c = Column(DataType.STRING, ["x", "z", None])
    assert column_fingerprint(a) == column_fingerprint(b)
    assert column_fingerprint(a) != column_fingerprint(c)


def test_column_fingerprint_memoised_and_refreshed_on_append():
    col = Column(DataType.INT64, [1, 2, 3])
    first = column_fingerprint(col)
    assert column_fingerprint(col) == first  # memo hit
    col.append(9)
    assert column_fingerprint(col) != first  # length change busts the memo


def test_table_fingerprint_ignores_unrelated_columns():
    table = make_window_table()
    fp = table_fingerprint(table, ["g", "o", "x"])
    # Swap out an *uninvolved* column: the restricted fingerprint holds.
    other = Table.from_dict({
        "g": (DataType.INT64, table.column("g").to_list()),
        "o": (DataType.INT64, table.column("o").to_list()),
        "x": (DataType.INT64, table.column("x").to_list()),
        "y": (DataType.FLOAT64, [0.0] * table.num_rows),
    }, name="t")
    assert table_fingerprint(other, ["g", "o", "x"]) == fp
    # But fingerprinting *all* columns sees the difference.
    assert table_fingerprint(other) != table_fingerprint(table)


def test_table_fingerprint_column_names_matter():
    a = Table.from_dict({"u": (DataType.INT64, [1, 2]),
                         "v": (DataType.INT64, [1, 2])})
    assert table_fingerprint(a, ["u"]) != table_fingerprint(a, ["v"])


def test_spec_signature_excludes_frame():
    small = WindowSpec(order_by=(OrderItem("o"),),
                       frame=FrameSpec.rows(preceding(5), current_row()))
    large = WindowSpec(order_by=(OrderItem("o"),),
                       frame=FrameSpec.rows(preceding(500), current_row()))
    assert spec_signature(small) == spec_signature(large)


def test_spec_signature_sees_ordering():
    asc = WindowSpec(order_by=(OrderItem("o"),))
    desc = WindowSpec(order_by=(OrderItem("o", descending=True),))
    part = WindowSpec(partition_by=("g",), order_by=(OrderItem("o"),))
    assert spec_signature(asc) != spec_signature(desc)
    assert spec_signature(asc) != spec_signature(part)


def test_involved_columns():
    table = make_window_table()
    spec = WindowSpec(partition_by=("g",), order_by=(OrderItem("o"),))
    calls = [WindowCall("count", ("x",), distinct=True),
             WindowCall("sum", ("y",), filter_where="flag")]
    assert involved_columns(table, spec, calls) == ("flag", "g", "o", "x",
                                                    "y")


def test_window_group_key_stable_across_equal_tables():
    spec = WindowSpec(partition_by=("g",), order_by=(OrderItem("o"),))
    calls = [WindowCall("count", ("x",), distinct=True)]
    a = make_window_table(seed=7)
    b = make_window_table(seed=7)
    c = make_window_table(seed=8)
    assert window_group_key(a, spec, calls) == window_group_key(b, spec,
                                                                calls)
    assert window_group_key(a, spec, calls) != window_group_key(c, spec,
                                                                calls)


# ----------------------------------------------------------------------
# budget
# ----------------------------------------------------------------------
def test_memory_budget_accounting():
    budget = MemoryBudget(100)
    assert not budget.over_budget and budget.remaining() == 100
    budget.charge(60)
    budget.charge(60)
    assert budget.over_budget and budget.remaining() == -20
    budget.release(60)
    assert not budget.over_budget and budget.used == 60


def test_memory_budget_unlimited():
    budget = MemoryBudget(None)
    budget.charge(1 << 40)
    assert budget.unlimited
    assert not budget.over_budget
    assert budget.remaining() == float("inf")


def test_memory_budget_rejects_negative():
    with pytest.raises(ValueError):
        MemoryBudget(-1)


def test_structure_breakdown_mst_components(rng):
    keys = rng.permutation(512)
    plain = MergeSortTree(keys, fanout=2)
    annotated = MergeSortTree(keys, fanout=2, aggregate=SUM,
                              payload=keys.astype(np.float64))
    b_plain = structure_breakdown(plain)
    b_annot = structure_breakdown(annotated)
    assert b_plain.levels > 0
    assert b_plain.pointers > 0  # cascading bridges
    assert b_plain.prefixes == 0
    assert b_annot.prefixes > 0
    assert b_annot.total > b_plain.total
    assert structure_bytes(annotated) == b_annot.total


def test_structure_breakdown_segment_tree(rng):
    tree = SegmentTree(rng.normal(size=256), kind="sum")
    breakdown = structure_breakdown(tree)
    assert breakdown.levels > 0 and breakdown.total == breakdown.levels


def test_structure_breakdown_addition():
    a = StructureSizeBreakdown(levels=1, pointers=2, prefixes=3, other=4)
    b = StructureSizeBreakdown(levels=10, pointers=20, prefixes=30,
                               other=40)
    total = a + b
    assert (total.levels, total.pointers, total.prefixes,
            total.other) == (11, 22, 33, 44)
    assert total.total == 110


# ----------------------------------------------------------------------
# store
# ----------------------------------------------------------------------
def _tree_builder(n, seed=0):
    keys = np.random.default_rng(seed).permutation(n)
    return lambda: MergeSortTree(keys, fanout=2)


def test_cache_builds_once_per_key():
    builds = []

    def builder():
        builds.append(1)
        return MergeSortTree(np.arange(64), fanout=2)

    with StructureCache() as cache:
        first = cache.acquire(("k",), builder)
        second = cache.acquire(("k",), builder)
        assert first is second
        assert len(builds) == 1
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.bytes_in_use > 0


def test_cache_distinct_keys_are_independent():
    with StructureCache() as cache:
        a = cache.acquire(("a",), _tree_builder(32, 1))
        b = cache.acquire(("b",), _tree_builder(32, 2))
        assert a is not b
        assert len(cache) == 2
        assert ("a",) in cache and ("c",) not in cache


def test_cache_lru_eviction_order():
    with StructureCache(budget_bytes=0, spill=False) as cache:
        # Budget 0: each release immediately evicts the LRU entry.
        cache.acquire(("a",), _tree_builder(64, 1))
        cache.acquire(("b",), _tree_builder(64, 2))
        # Both pinned: nothing evictable yet.
        assert len(cache) == 2
        cache.release(("a",))
        assert ("a",) not in cache and ("b",) in cache
        cache.release(("b",))
        assert len(cache) == 0
        assert cache.stats().evictions == 2
        assert cache.stats().bytes_in_use == 0


def test_cache_hit_refreshes_lru_position():
    with StructureCache(spill=False) as cache:
        cache.acquire(("a",), _tree_builder(64, 1), pin=False)
        cache.acquire(("b",), _tree_builder(64, 2), pin=False)
        cache.acquire(("a",), _tree_builder(64, 1), pin=False)  # refresh a
        # Shrink the budget below one tree: the true LRU ("b") must go
        # first. Simulate by forcing eviction through the internal hook.
        cache._budget.total = cache.stats().bytes_in_use - 1
        cache._evict_to_budget()
        assert ("a",) in cache and ("b",) not in cache


def test_cache_pinning_blocks_eviction():
    with StructureCache(budget_bytes=0, spill=False) as cache:
        cache.acquire(("pinned",), _tree_builder(64, 1))  # pin=True
        cache.acquire(("loose",), _tree_builder(64, 2), pin=False)
        assert ("pinned",) in cache
        assert ("loose",) not in cache  # evicted immediately
        cache.release(("pinned",))
        assert ("pinned",) not in cache


def test_cache_release_on_missing_key_is_noop():
    with StructureCache() as cache:
        cache.release(("never",))  # must not raise
        assert cache.stats().entries == 0


def test_cache_clear_drops_pinned_entries():
    with StructureCache() as cache:
        cache.acquire(("a",), _tree_builder(64, 1))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().bytes_in_use == 0


def test_cache_stats_snapshot_is_detached():
    with StructureCache() as cache:
        cache.acquire(("a",), _tree_builder(64, 1))
        snapshot = cache.stats()
        cache.acquire(("a",), _tree_builder(64, 1))
        assert snapshot.hits == 0
        assert cache.stats().hits == 1


def test_cache_stats_render_lines():
    with StructureCache(budget_bytes=1 << 20) as cache:
        cache.acquire(("a",), _tree_builder(64, 1))
        lines = cache.stats().render()
        assert len(lines) == 2
        assert "hits=0 misses=1" in lines[0]
        assert "budget=1,048,576 B" in lines[1]


def test_cache_concurrent_acquire_builds_exactly_once():
    builds = []
    barrier = threading.Barrier(8)
    results = []

    def builder():
        builds.append(threading.get_ident())
        return MergeSortTree(np.arange(256), fanout=2)

    with StructureCache() as cache:
        def worker():
            barrier.wait()
            results.append(cache.acquire(("shared",), builder, pin=False))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(builds) == 1
        assert all(r is results[0] for r in results)
        stats = cache.stats()
        assert stats.misses == 1 and stats.hits == 7


# ----------------------------------------------------------------------
# acquirer
# ----------------------------------------------------------------------
def test_acquirer_without_cache_calls_builder_every_time():
    builds = []
    acquirer = StructureAcquirer(None, ("prefix",))

    def builder():
        builds.append(1)
        return object()

    acquirer.acquire("kind", (), builder)
    acquirer.acquire("kind", (), builder)
    acquirer.release_all()  # no-op, must not raise
    assert len(builds) == 2


def test_acquirer_composes_keys_and_releases_pins():
    with StructureCache(budget_bytes=0, spill=False) as cache:
        acquirer = StructureAcquirer(cache, ("w", "fp", 0))
        acquirer.acquire("mst:perm", (("x",), None),
                         _tree_builder(64, 1))
        key = ("w", "fp", 0, "mst:perm", ("x",), None)
        assert key in cache
        # Pinned by the acquirer: survives a zero budget.
        assert len(cache) == 1
        acquirer.release_all()
        # Unpinned: the zero budget now evicts it.
        assert len(cache) == 0


def test_acquirer_same_kind_different_config_distinct_entries():
    with StructureCache() as cache:
        acquirer = StructureAcquirer(cache, ("w",))
        a = acquirer.acquire("mst:perm", (("x",),), _tree_builder(32, 1))
        b = acquirer.acquire("mst:perm", (("y",),), _tree_builder(32, 2))
        assert a is not b and len(cache) == 2
        acquirer.release_all()
