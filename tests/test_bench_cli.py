"""The ``python -m repro.bench`` figure-regeneration CLI."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


def test_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_no_args_lists(capsys):
    assert main([]) == 0
    assert "fig9" in capsys.readouterr().out


def test_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_run_memory_experiment(capsys):
    assert main(["memory"]) == 0
    out = capsys.readouterr().out
    assert "12.4" in out and "4.4" in out


def test_run_crossovers_with_scale(capsys, monkeypatch):
    assert main(["fig11-crossovers", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "crossover" in out.lower()


def test_run_fig14_small(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.02")
    assert main(["fig14"]) == 0
    out = capsys.readouterr().out
    assert "build tree layers" in out
