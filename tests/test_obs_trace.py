"""The span tracer: nesting, threads, caps, determinism, null cost."""

import json
import threading

import pytest

from repro.obs import NULL_SPAN, NULL_TRACER, NullTracer, Tracer
from repro.obs import trace_enabled_from_env
from repro.resilience.context import SimulatedClock


class TestSpanTree:
    def test_nesting_follows_with_blocks(self):
        tracer = Tracer(clock=SimulatedClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        root = tracer.finish()
        assert [c.name for c in root.children] == ["outer"]
        outer = root.children[0]
        assert [c.name for c in outer.children] == ["inner", "sibling"]

    def test_durations_come_from_the_clock(self):
        clock = SimulatedClock()
        tracer = Tracer(clock=clock)
        with tracer.span("work") as span:
            clock.advance(0.25)
        assert span.duration == pytest.approx(0.25)
        clock.advance(1.0)
        root = tracer.finish()
        assert root.duration == pytest.approx(1.25)

    def test_event_is_a_zero_duration_child(self):
        tracer = Tracer(clock=SimulatedClock())
        tracer.event("structure.reuse", kind="mst")
        root = tracer.finish()
        (event,) = root.children
        assert event.name == "structure.reuse"
        assert event.duration == 0.0
        assert event.attrs == {"kind": "mst"}

    def test_annotate_targets_the_innermost_open_span(self):
        tracer = Tracer(clock=SimulatedClock())
        with tracer.span("probe"):
            tracer.annotate(rows=7)
        tracer.annotate(late=True)  # nothing open -> root
        root = tracer.finish()
        assert root.children[0].attrs == {"rows": 7}
        assert root.attrs == {"late": True}

    def test_find_all_and_walk(self):
        tracer = Tracer(clock=SimulatedClock())
        with tracer.span("window.group"):
            with tracer.span("probe"):
                pass
            with tracer.span("probe"):
                pass
        root = tracer.finish()
        assert len(root.find_all("probe")) == 2
        assert [s.name for s in root.walk()] == [
            "query", "window.group", "probe", "probe"]


class TestThreading:
    def test_worker_spans_anchor_to_the_submitting_span(self):
        tracer = Tracer(clock=SimulatedClock())
        with tracer.span("window.group") as group:
            anchor = tracer.current()

            def work():
                with tracer.span("parallel.morsel", parent=anchor):
                    pass

            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        root = tracer.finish()
        assert group.children[0].name == "parallel.morsel"
        # First-seen thread ordinals: main thread is t0, the worker t1.
        assert root.thread == 0
        assert group.children[0].thread == 1

    def test_worker_without_parent_lands_on_the_root(self):
        tracer = Tracer(clock=SimulatedClock())

        def work():
            with tracer.span("parallel.morsel"):
                pass

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        root = tracer.finish()
        assert [c.name for c in root.children] == ["parallel.morsel"]


class TestBounds:
    def test_span_cap_drops_and_counts(self):
        tracer = Tracer(clock=SimulatedClock(), max_spans=3)
        handles = [tracer.span(f"s{i}") for i in range(5)]
        for handle in handles:
            handle.__exit__(None, None, None)
        assert tracer.dropped == 3  # root + 2 recorded, 3 dropped
        assert handles[2] is NULL_SPAN
        assert "dropped" in tracer.render()

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            span.annotate(rows=1)


class TestExport:
    def test_render_is_deterministic_under_a_simulated_clock(self):
        tracer = Tracer(clock=SimulatedClock())
        with tracer.span("parse", chars=12):
            pass
        tracer.finish()
        assert tracer.render() == ("query 0.000ms [t0]\n"
                                   "  parse 0.000ms [t0] chars=12")

    def test_render_elides_past_max_children(self):
        tracer = Tracer(clock=SimulatedClock())
        for i in range(5):
            tracer.event(f"e{i}")
        tracer.finish()
        text = tracer.root.render(max_children=2)
        assert "... (+3 more)" in "\n".join(text)

    def test_to_json_round_trips(self):
        clock = SimulatedClock()
        tracer = Tracer(clock=clock)
        with tracer.span("probe", rows=3):
            clock.advance(0.002)
        tracer.finish()
        payload = json.loads(tracer.to_json())
        assert payload["name"] == "query"
        assert payload["start_ms"] == 0.0
        (probe,) = payload["children"]
        assert probe["duration_ms"] == pytest.approx(2.0)
        assert probe["attrs"] == {"rows": 3}


class TestNullTracer:
    def test_everything_is_a_no_op(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.span("x") is NULL_SPAN
        NULL_TRACER.event("x")
        NULL_TRACER.annotate(rows=1)
        assert NULL_TRACER.current() is NULL_SPAN
        assert NULL_TRACER.finish() is None
        assert NULL_TRACER.render() == ""
        assert NULL_TRACER.to_dict() == {}


class TestEnvSwitch:
    @pytest.mark.parametrize("raw,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("false", False), ("", False), ("off", False),
    ])
    def test_recognised_values(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_TRACE", raw)
        assert trace_enabled_from_env() is expected

    def test_unset_uses_the_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert trace_enabled_from_env() is False
        assert trace_enabled_from_env(default=True) is True
