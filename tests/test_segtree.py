"""Segment trees: distributive queries and the holistic percentile
variant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.segtree import HolisticSegmentTree, SegmentTree


class TestSegmentTree:
    @pytest.mark.parametrize("kind,reducer,identity", [
        ("sum", sum, 0.0),
        ("min", min, np.inf),
        ("max", max, -np.inf),
    ])
    def test_scalar_queries(self, kind, reducer, identity, rng):
        values = rng.integers(0, 100, size=77).astype(np.float64)
        tree = SegmentTree(values, kind=kind)
        for _ in range(100):
            lo, hi = sorted(rng.integers(0, 78, size=2))
            got = tree.query(int(lo), int(hi))
            if lo == hi:
                assert got == identity
            else:
                assert got == pytest.approx(reducer(values[lo:hi]))

    def test_batched_matches_scalar(self, rng):
        values = rng.normal(size=90)
        tree = SegmentTree(values, kind="sum")
        lo = rng.integers(0, 91, size=60)
        hi = np.minimum(lo + rng.integers(0, 90, size=60), 90)
        got = tree.batched_query(lo, hi)
        for i in range(60):
            assert got[i] == pytest.approx(tree.query(int(lo[i]),
                                                      int(hi[i])))

    def test_generic_merge(self):
        tree = SegmentTree(["a", "b", "c", "d"],
                           merge=lambda x, y: x + y, identity="")
        assert tree.query(1, 3) == "bc"
        assert tree.query(0, 4) == "abcd"
        assert tree.query(2, 2) == ""

    def test_generic_has_no_batched(self):
        tree = SegmentTree([1], merge=lambda a, b: a + b, identity=0)
        with pytest.raises(ValueError):
            tree.batched_query(np.array([0]), np.array([1]))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SegmentTree([1, 2])  # neither kind nor merge
        with pytest.raises(ValueError):
            SegmentTree([1, 2], kind="sum", merge=lambda a, b: a)
        with pytest.raises(ValueError):
            SegmentTree([1, 2], kind="median")

    def test_clamping(self):
        tree = SegmentTree(np.arange(5, dtype=np.float64), kind="sum")
        assert tree.query(-3, 99) == pytest.approx(10.0)

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=100),
           st.integers(0, 100), st.integers(0, 100))
    @settings(max_examples=100, deadline=None)
    def test_sum_hypothesis(self, values, a, b):
        n = len(values)
        lo, hi = sorted((a % (n + 1), b % (n + 1)))
        tree = SegmentTree(np.asarray(values, dtype=np.float64),
                           kind="sum")
        assert tree.query(lo, hi) == pytest.approx(float(sum(values[lo:hi])))


class TestHolisticSegmentTree:
    def test_kth_smallest(self, rng):
        values = rng.integers(0, 50, size=70).astype(np.float64)
        tree = HolisticSegmentTree(values)
        for _ in range(80):
            lo, hi = sorted(rng.integers(0, 71, size=2))
            if lo == hi:
                continue
            k = int(rng.integers(0, hi - lo))
            expected = sorted(values[lo:hi])[k]
            assert tree.kth_smallest(int(lo), int(hi), k) == expected

    def test_percentile_disc(self, rng):
        values = rng.normal(size=64)
        tree = HolisticSegmentTree(values)
        for fraction in (0.0, 0.25, 0.5, 0.9, 1.0):
            frame = sorted(values[10:50])
            k = max(int(np.ceil(fraction * len(frame))) - 1, 0)
            assert tree.percentile_disc(10, 50, fraction) == \
                pytest.approx(frame[k])

    def test_errors(self):
        tree = HolisticSegmentTree(np.arange(8, dtype=np.float64))
        with pytest.raises(IndexError):
            tree.kth_smallest(2, 5, 3)
        with pytest.raises(IndexError):
            tree.percentile_disc(4, 4, 0.5)

    def test_duplicates(self):
        tree = HolisticSegmentTree(np.array([5.0, 5.0, 5.0, 1.0]))
        assert tree.kth_smallest(0, 4, 0) == 1.0
        assert tree.kth_smallest(0, 4, 3) == 5.0

    def test_memory_accounting(self):
        tree = HolisticSegmentTree(np.arange(100, dtype=np.float64))
        assert tree.memory_bytes() >= 100 * 8
