"""Partition-at-a-time out-of-core window execution.

The contract: a window query that spills completed partitions through
the checksummed spill layer produces *bit-identical* results to the
in-memory path, under every rung of the degradation ladder — clean
spills, spill writes that keep failing (→ in-memory scatter), spilled
chunks that vanish or corrupt before reload (→ deterministic
re-evaluation) — and every degradation is visible in the query stats
and the governor's ledger.
"""

import pytest

from conftest import make_window_table
from repro.resilience import FaultInjector
from repro.sql import Catalog, Session, SessionConfig

#: No NULLs in ``o`` / ``y``, so every partition's values are
#: homogeneous numeric lists — the spillable case.
SQL = """
    select g, sum(o) over w as s, avg(y) over w as a
    from t
    window w as (partition by g order by o
                 rows between 7 preceding and 2 following)
"""

#: ``x`` has NULLs: those partitions cannot round-trip through an
#: int64 chunk and must scatter directly (still bit-identical).
SQL_NULLS = """
    select g, sum(x) over w as s
    from t
    window w as (partition by g order by o
                 rows between 7 preceding and current row)
"""


def _catalog(n=200):
    return Catalog({"t": make_window_table(n)})


def _oracle(sql, n=200):
    session = Session(_catalog(n))
    try:
        return session.execute(sql).table
    finally:
        session.close()


def _ooc_config(**overrides):
    base = dict(memory_budget_bytes=1 << 20, out_of_core=True)
    base.update(overrides)
    return SessionConfig(**base)


class TestBitIdentity:
    def test_forced_out_of_core_matches_in_memory(self):
        session = Session(_catalog(), config=_ooc_config())
        result = session.execute(SQL)
        assert result == _oracle(SQL)
        assert result.stats.strategies == ["out-of-core"]
        assert result.stats.partition_spills > 0
        assert result.stats.partition_reloads == \
            result.stats.partition_spills
        assert result.stats.partition_spill_bytes > 0
        stats = session.memory.stats()
        assert stats.partition_spills == result.stats.partition_spills
        assert stats.partition_reloads == result.stats.partition_reloads
        session.close()

    def test_null_partitions_scatter_directly_and_stay_identical(self):
        session = Session(_catalog(), config=_ooc_config())
        result = session.execute(SQL_NULLS)
        assert result == _oracle(SQL_NULLS)
        session.close()

    def test_auto_mode_engages_under_tiny_budget(self):
        # No forcing: a 64 KiB budget is fully consumed by the query's
        # own reservation, so the group estimate exceeds the headroom.
        session = Session(_catalog(), config=SessionConfig(
            memory_budget_bytes=64 << 10))
        result = session.execute(SQL)
        assert result == _oracle(SQL)
        assert result.stats.strategies == ["out-of-core"]
        assert result.stats.partition_spills > 0
        session.close()

    def test_auto_mode_stays_in_memory_with_headroom(self):
        session = Session(_catalog(), config=SessionConfig(
            memory_budget_bytes=1 << 30))
        result = session.execute(SQL)
        assert result == _oracle(SQL)
        assert result.stats.partition_spills == 0
        assert "out-of-core" not in result.stats.strategies
        session.close()

    def test_out_of_core_false_never_spills(self):
        session = Session(_catalog(), config=SessionConfig(
            memory_budget_bytes=100 << 10, out_of_core=False))
        result = session.execute(SQL)
        assert result == _oracle(SQL)
        assert result.stats.partition_spills == 0
        session.close()


class TestDegradation:
    def test_spill_write_failure_falls_back_to_memory(self):
        faults = FaultInjector().plan("partition.spill", times=-1)
        session = Session(_catalog(),
                          config=_ooc_config(faults=faults))
        result = session.execute(SQL)
        assert result == _oracle(SQL)
        assert result.stats.partition_spills == 0
        assert result.stats.health.fallbacks >= 1
        assert faults.fired("partition.spill") > 0
        session.close()

    def test_transient_spill_write_failure_retries(self):
        faults = FaultInjector().plan("partition.spill", times=1)
        session = Session(_catalog(),
                          config=_ooc_config(faults=faults))
        result = session.execute(SQL)
        assert result == _oracle(SQL)
        assert result.stats.partition_spills > 0
        assert result.stats.health.retries >= 1
        assert result.stats.health.fallbacks == 0
        session.close()

    def test_reload_failure_reevaluates_partition(self):
        faults = FaultInjector().plan("partition.reload", times=-1)
        session = Session(_catalog(),
                          config=_ooc_config(faults=faults))
        result = session.execute(SQL)
        assert result == _oracle(SQL)
        assert result.stats.partition_spills > 0
        assert result.stats.partition_reloads == 0
        assert result.stats.health.corruptions == \
            result.stats.partition_spills
        session.close()

    def test_stats_render_shows_out_of_core_line(self):
        session = Session(_catalog(), config=_ooc_config())
        result = session.execute(SQL)
        assert "out-of-core: partition_spills=" in result.stats.render()
        assert "Memory" in result.explain()
        session.close()

    def test_spill_dir_is_clean_after_query(self, tmp_path):
        session = Session(_catalog(), config=_ooc_config(
            spill_dir=str(tmp_path)))
        result = session.execute(SQL)
        assert result.stats.partition_spills > 0
        leftovers = [p for p in tmp_path.iterdir()
                     if p.name.endswith(".npz")]
        assert leftovers == []
        session.close()


def test_repeated_out_of_core_queries_are_stable():
    session = Session(_catalog(), config=_ooc_config())
    oracle = _oracle(SQL)
    for _ in range(3):
        assert session.execute(SQL) == oracle
    assert session.memory.stats().partition_spills > 0
    session.close()
