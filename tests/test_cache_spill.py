"""Spill/reload round-trips for evicted cache entries."""

import os

import numpy as np

from repro.cache.spill import SpillManager, can_spill
from repro.cache.store import StructureCache
from repro.mst.aggregates import MAX, SUM
from repro.mst.tree import MergeSortTree
from repro.segtree.tree import SegmentTree


def _annotated_tree(n, seed=0, spec=SUM, fanout=2):
    rng = np.random.default_rng(seed)
    keys = rng.permutation(n)
    payload = rng.normal(size=n)
    return MergeSortTree(keys, fanout=fanout, aggregate=spec,
                         payload=payload)


# ----------------------------------------------------------------------
# can_spill
# ----------------------------------------------------------------------
def test_can_spill_plain_and_annotated_trees(rng):
    assert can_spill(MergeSortTree(rng.permutation(64), fanout=2))
    assert can_spill(_annotated_tree(64))


def test_can_spill_rejects_non_trees(rng):
    assert not can_spill(SegmentTree(rng.normal(size=64), kind="sum"))
    assert not can_spill(object())
    assert not can_spill(None)


def test_can_spill_rejects_object_prefix_trees(rng):
    # A UDAF-style spec with no numpy kernel yields list agg_prefix
    # levels, which the .npz format cannot represent.
    from repro.mst.aggregates import AggregateSpec
    spec = AggregateSpec("pysum", 0, lambda v: v, lambda a, b: a + b,
                         lambda a: a)
    keys = rng.permutation(64)
    tree = MergeSortTree(keys, fanout=2, aggregate=spec,
                         payload=[float(v) for v in keys])
    assert not can_spill(tree)


# ----------------------------------------------------------------------
# SpillManager
# ----------------------------------------------------------------------
def test_spill_roundtrip_exact(rng, tmp_path):
    manager = SpillManager(str(tmp_path))
    tree = _annotated_tree(257, seed=3, spec=SUM, fanout=4)
    path, meta = manager.spill(tree)
    assert os.path.exists(path)
    assert manager.bytes_written == os.path.getsize(path)
    assert meta is SUM

    loaded = manager.load(path, meta)
    assert loaded.aggregate_spec is SUM
    for original, restored in zip(tree.levels.keys, loaded.levels.keys):
        assert np.array_equal(original, restored)
    for original, restored in zip(tree.levels.agg_prefix,
                                  loaded.levels.agg_prefix):
        assert np.array_equal(original, restored)
    # Reloaded trees answer aggregate queries identically.
    for _ in range(20):
        lo = int(rng.integers(0, 200))
        hi = int(rng.integers(lo + 1, 258))
        thr = int(rng.integers(0, 257))
        assert tree.aggregate([(lo, hi)], thr) == \
            loaded.aggregate([(lo, hi)], thr)


def test_spill_roundtrip_max_spec(rng, tmp_path):
    manager = SpillManager(str(tmp_path))
    tree = _annotated_tree(100, seed=9, spec=MAX)
    path, meta = manager.spill(tree)
    loaded = manager.load(path, meta)
    assert tree.aggregate([(0, 100)], 50) == loaded.aggregate([(0, 100)],
                                                              50)


def test_spill_rejects_unspillable(rng, tmp_path):
    manager = SpillManager(str(tmp_path))
    import pytest
    with pytest.raises(ValueError):
        manager.spill(SegmentTree(rng.normal(size=16), kind="sum"))


def test_spill_discard_removes_file(tmp_path):
    manager = SpillManager(str(tmp_path))
    path, _ = manager.spill(_annotated_tree(32))
    manager.discard(path)
    assert not os.path.exists(path)
    manager.discard(path)  # idempotent


def test_owned_tempdir_removed_on_close():
    manager = SpillManager()  # no directory: lazily owns a tempdir
    path, _ = manager.spill(_annotated_tree(32))
    directory = manager.directory
    assert os.path.isdir(directory)
    manager.close()
    assert not os.path.isdir(directory)


def test_provided_directory_survives_close(tmp_path):
    manager = SpillManager(str(tmp_path))
    manager.spill(_annotated_tree(32))
    manager.close()
    assert os.path.isdir(str(tmp_path))


# ----------------------------------------------------------------------
# eviction through the cache
# ----------------------------------------------------------------------
def test_evict_spill_reload_identical_results(rng, tmp_path):
    queries = [(int(a), int(a) + 1 + int(b), int(t))
               for a, b, t in zip(rng.integers(0, 100, 30),
                                  rng.integers(1, 150, 30),
                                  rng.integers(0, 256, 30))]
    queries = [(lo, min(hi, 256), thr) for lo, hi, thr in queries]

    def builder():
        return _annotated_tree(256, seed=5)

    baseline = [builder().aggregate([(lo, hi)], thr)
                for lo, hi, thr in queries]

    with StructureCache(budget_bytes=0, spill_dir=str(tmp_path)) as cache:
        tree = cache.acquire(("t",), builder)
        cache.release(("t",))  # unpinned + zero budget -> spilled out
        stats = cache.stats()
        assert stats.evictions == 1 and stats.spills == 1
        assert stats.spilled_entries == 1
        assert ("t",) in cache  # the slot survives the spill
        assert stats.bytes_in_use < tree.levels.keys[0].nbytes

        reloaded = cache.acquire(("t",), builder, pin=False)
        stats = cache.stats()
        assert stats.reloads == 1 and stats.hits == 1
        assert stats.misses == 1  # never rebuilt
        answers = [reloaded.aggregate([(lo, hi)], thr)
                   for lo, hi, thr in queries]
        assert answers == baseline


def test_spill_disabled_drops_and_rebuilds(tmp_path):
    builds = []

    def builder():
        builds.append(1)
        return _annotated_tree(128, seed=6)

    with StructureCache(budget_bytes=0, spill_dir=str(tmp_path),
                        spill=False) as cache:
        cache.acquire(("t",), builder, pin=False)
        assert ("t",) not in cache  # dropped, not spilled
        assert cache.stats().spills == 0
        assert os.listdir(str(tmp_path)) == []
        cache.acquire(("t",), builder, pin=False)
        assert len(builds) == 2
        assert cache.stats().misses == 2


def test_unspillable_structures_dropped_even_with_spill_on(rng, tmp_path):
    values = rng.normal(size=128)
    with StructureCache(budget_bytes=0, spill_dir=str(tmp_path)) as cache:
        cache.acquire(("seg",), lambda: SegmentTree(values, kind="sum"),
                      pin=False)
        assert ("seg",) not in cache
        stats = cache.stats()
        assert stats.evictions == 1 and stats.spills == 0


def test_close_cleans_spill_files(tmp_path):
    cache = StructureCache(budget_bytes=0, spill_dir=str(tmp_path))
    cache.acquire(("t",), lambda: _annotated_tree(64), pin=False)
    assert len(os.listdir(str(tmp_path))) == 1
    cache.close()
    assert os.listdir(str(tmp_path)) == []


# ----------------------------------------------------------------------
# orphan sweep vs concurrent live sessions sharing one directory
# ----------------------------------------------------------------------
def _dead_pid():
    """A pid guaranteed not to be running: spawn-and-reap a child."""
    import subprocess
    import sys
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


def test_sweep_skips_live_pids_removes_dead_and_legacy(tmp_path):
    from repro.cache.spill import sweep_orphans
    live = tmp_path / f"repro-spill-p{os.getpid()}-deadbeef.npz"
    dead = tmp_path / f"repro-spill-p{_dead_pid()}-cafe.npz"
    legacy = tmp_path / "repro-spill-0123456789abcdef.npz"
    unrelated = tmp_path / "user-data.npz"
    for path in (live, dead, legacy, unrelated):
        path.write_bytes(b"x")
    assert sweep_orphans(str(tmp_path)) == 2
    assert live.exists()        # owner process (us) is alive
    assert not dead.exists()    # owner exited: orphan
    assert not legacy.exists()  # pre-pid-tag name: unclaimable
    assert unrelated.exists()   # never touch foreign files


def test_startup_sweep_spares_concurrent_sessions_files(tmp_path):
    """Two managers share a spill dir: the second one's startup sweep
    must not delete the first one's live spill files (both owned by
    this very-much-alive process), while a dead session's leftovers
    still get cleaned."""
    first = SpillManager(str(tmp_path))
    path, meta = first.spill(_annotated_tree(64, seed=9))
    stale = tmp_path / f"repro-spill-p{_dead_pid()}-feed.npz"
    stale.write_bytes(b"x")

    second = SpillManager(str(tmp_path))
    second.directory  # touching the property runs the startup sweep
    assert second.orphans_swept == 1
    assert not stale.exists()
    assert os.path.exists(path)

    # The first session's entry is fully intact after the sweep.
    reloaded = first.load(path, meta)
    original = _annotated_tree(64, seed=9)
    assert reloaded.count_below(0, 64, 32) == \
        original.count_below(0, 64, 32)


def test_two_sessions_spill_chunks_side_by_side(tmp_path):
    """Chunk spills from concurrent managers in one directory never
    collide and reload independently."""
    a = SpillManager(str(tmp_path))
    b = SpillManager(str(tmp_path))
    pa, _ = a.spill_chunk({"rows": np.arange(8), "v0": np.ones(8)})
    pb, _ = b.spill_chunk({"rows": np.arange(4), "v0": np.zeros(4)})
    assert pa != pb
    assert a.load_chunk(pa)["rows"].tolist() == list(range(8))
    assert b.load_chunk(pb)["v0"].tolist() == [0.0] * 4
