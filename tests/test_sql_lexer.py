"""SQL tokenizer."""

import datetime

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.lexer import parse_date, parse_interval, tokenize


def kinds(sql):
    return [(t.kind, t.value) for t in tokenize(sql)[:-1]]


class TestTokenize:
    def test_keywords_and_idents(self):
        got = kinds("SELECT foo FROM Bar")
        assert got == [("keyword", "select"), ("ident", "foo"),
                       ("keyword", "from"), ("ident", "bar")]

    def test_numbers(self):
        got = kinds("1 2.5 .5 1e3 2.5E-2")
        assert got == [("number", 1), ("number", 2.5), ("number", 0.5),
                       ("number", 1000.0), ("number", 0.025)]

    def test_strings_with_escapes(self):
        got = kinds("'it''s'")
        assert got == [("string", "it's")]

    def test_quoted_identifiers(self):
        assert kinds('"Weird Name"') == [("ident", "weird name")]

    def test_symbols(self):
        got = [v for _, v in kinds("a <> b != c >= d || e :: f")]
        assert "<>" in got and "!=" in got and ">=" in got and "||" in got

    def test_comments(self):
        got = kinds("select -- line comment\n 1 /* block */ + 2")
        assert got == [("keyword", "select"), ("number", 1),
                       ("symbol", "+"), ("number", 2)]

    def test_end_token(self):
        assert tokenize("x")[-1].kind == "end"

    def test_errors(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'unterminated")
        with pytest.raises(SqlSyntaxError):
            tokenize("/* unterminated")
        with pytest.raises(SqlSyntaxError):
            tokenize("select @")

    def test_positions(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3


class TestLiterals:
    def test_interval_units(self):
        assert parse_interval("1 day") == 1
        assert parse_interval("2 weeks") == 14
        assert parse_interval("1 month") == 30
        assert parse_interval("3 years") == 3 * 365

    def test_interval_errors(self):
        with pytest.raises(SqlSyntaxError):
            parse_interval("soon")
        with pytest.raises(SqlSyntaxError):
            parse_interval("one month")
        with pytest.raises(SqlSyntaxError):
            parse_interval("1 fortnight")

    def test_date(self):
        assert parse_date("2022-06-12") == datetime.date(2022, 6, 12)
        with pytest.raises(SqlSyntaxError):
            parse_date("12/06/2022")
