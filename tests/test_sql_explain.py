"""EXPLAIN plan rendering."""


from repro.sql import explain


def test_simple_scan():
    plan = explain("select a, b from t where a > 1 order by b limit 3")
    assert "Scan t" in plan
    assert "Filter ((a > 1))" in plan
    assert "Sort (b)" in plan
    assert "Limit (3)" in plan
    # ordering: limit above sort above project above filter above scan
    assert plan.index("Limit") < plan.index("Sort") < plan.index("Project")
    assert plan.index("Project") < plan.index("Filter") < plan.index("Scan")


def test_join_renders_nested_loop():
    plan = explain("select * from a join b on a.x = b.x")
    assert "NestedLoopJoin (inner, on (a.x = b.x))" in plan
    assert plan.count("Scan") == 2


def test_cross_join():
    plan = explain("select * from a, b")
    assert "NestedLoopJoin (cross)" in plan


def test_aggregate_and_having():
    plan = explain("select g, count(*) from t group by g "
                   "having count(*) > 1")
    assert "Aggregate (group by g)" in plan
    assert "Having" in plan


def test_window_node():
    plan = explain("select rank(order by v desc) over w from t "
                   "window w as (order by o)")
    assert "Window (rank(...) OVER w)" in plan


def test_cte_and_subquery():
    plan = explain("""
        with c as (select 1 as x)
        select (select max(x) from c) from (select * from c) sub
    """)
    assert "CTE c:" in plan
    assert "Subquery AS sub:" in plan
    assert "(correlated subquery)" in plan


def test_distinct_and_star():
    plan = explain("select distinct t.* from t")
    assert "Distinct" in plan
    assert "t.*" in plan


def test_expression_rendering():
    plan = explain("select case when a then 1 end, cast(a as int), "
                   "b between 1 and 2, c in (1, 2), d is not null, "
                   "interval '1 week', -e, 's' from t")
    assert "CASE ..." in plan
    assert "CAST(a AS int)" in plan
    assert "between" in plan
    assert "in (1, 2)" in plan
    assert "is not null" in plan
    assert "INTERVAL '1 week'" in plan
    assert "'s'" in plan


def test_figure9_shapes_visible():
    """The paper's point: the traditional formulations are nested-loop
    plans; EXPLAIN makes that visible."""
    selfjoin = explain("""
        with lineitem_rn as (select 1 as rn)
        select percentile_disc(0.5) within group (order by l2.rn)
        from lineitem_rn l1 join lineitem_rn l2
          on l2.rn between l1.rn - 999 and l1.rn
        group by l1.rn
    """)
    assert "NestedLoopJoin" in selfjoin
    assert "Aggregate" in selfjoin
