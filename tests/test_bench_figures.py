"""The figure-regeneration functions run correctly at tiny scale.

The full-scale shape assertions live in ``benchmarks/``; these tests
exercise the same code paths quickly so ``pytest tests/`` alone covers
the harness.
"""

import math

import pytest

from repro.bench.figures import (
    fig09_sql_formulations,
    fig10_scalability,
    fig10_simulated_sweep,
    fig11_crossovers,
    fig11_frame_sizes,
    fig12_nonmonotonic,
    fig13_fanout_sampling,
    fig14_cost_breakdown,
    memory_model_table,
    table1_complexity,
)


def test_fig09_structure():
    series = fig09_sql_formulations(num_rows=300, frame=50)
    approaches = [row[0] for row in series.rows]
    assert "native merge sort tree" in approaches
    assert "SQL correlated subquery" in approaches
    for row in series.rows:
        assert row[1] > 0 and row[2] > 0


def test_fig10_structure():
    series = fig10_scalability(sizes=[300, 600])
    functions = {row[0] for row in series.rows}
    assert functions == {"median", "rank", "lead", "distinct count"}
    for row in series.rows:
        assert row[5] > 0  # simulated throughput always present


def test_fig10_simulated_sweep():
    series = fig10_simulated_sweep(sizes=[100_000, 800_000])
    mst = {row[1]: row[2] for row in series.rows if row[0] == "mst"}
    assert mst[800_000] > mst[100_000]


def test_fig11_structure():
    series = fig11_frame_sizes(num_rows=400, frames=[5, 50, 400])
    algorithms = {row[0] for row in series.rows}
    assert algorithms == {"mst", "incremental", "ostree", "naive"}


def test_fig11_crossovers_match_paper():
    series = fig11_crossovers()
    for algorithm, found, paper in series.rows:
        assert paper / 2 <= found <= paper * 2


def test_fig12_structure():
    series = fig12_nonmonotonic(num_rows=300, ms=[0.0, 1.0])
    deltas = {row[1]: row[4] for row in series.rows if row[0] == "mst"}
    assert deltas[1.0] > deltas[0.0], \
        "non-monotonicity must raise the average frame delta"


def test_fig13_structure():
    series = fig13_fanout_sampling(num_keys=400, fanouts=[2, 8],
                                   samplings=[4, 32], queries=200)
    assert len(series.rows) == 4
    best = min(row[3] for row in series.rows)
    assert best == 1.0


def test_fig14_structure():
    series = fig14_cost_breakdown(num_rows=3_000)
    labels = [row[0] for row in series.rows]
    assert labels[-1] == "TOTAL"
    fractions = [row[2] for row in series.rows[:-1]]
    assert abs(sum(fractions) - 1.0) < 1e-6


def test_table1_structure():
    series = table1_complexity(sizes=[200, 400])
    keys = {(row[0], row[1]) for row in series.rows}
    assert ("percentile", "MST") in keys
    assert ("dist. count", "naive") in keys
    for row in series.rows:
        assert math.isfinite(row[4])


def test_memory_model_table_exact():
    series = memory_model_table()
    for _, _, gigabytes, paper in series.rows:
        assert gigabytes == pytest.approx(paper, abs=0.01)
