"""Windowed MODE: range-mode index, incremental, naive, SQL."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_window_table
from repro.rangemode import IncrementalMode, RangeModeIndex, windowed_mode
from repro.sql import Catalog, execute
from repro.table import DataType, Table
from repro.window import (
    FrameExclusion,
    FrameSpec,
    WindowCall,
    WindowSpec,
    current_row,
    following,
    preceding,
    window_query,
)
from repro.window.frame import OrderItem


def _oracle_mode(values, lo, hi, first_seen):
    counts = {}
    for j in range(lo, hi):
        counts[values[j]] = counts.get(values[j], 0) + 1
    if not counts:
        return None, 0
    best = max(counts.items(), key=lambda kv: (kv[1], -first_seen[kv[0]]))
    return best


def _first_seen(values):
    seen = {}
    for i, v in enumerate(values):
        if v not in seen:
            seen[v] = i
    return seen


class TestRangeModeIndex:
    @pytest.mark.parametrize("block_size", [None, 1, 3, 10, 100])
    def test_matches_oracle(self, block_size, rng):
        n = 120
        values = rng.integers(0, 7, size=n).tolist()
        first = _first_seen(values)
        index = RangeModeIndex(values, block_size=block_size)
        for _ in range(150):
            lo, hi = sorted(rng.integers(0, n + 1, size=2))
            got = index.query(int(lo), int(hi))
            want = _oracle_mode(values, lo, hi, first)
            if want[0] is None:
                assert got == (None, 0)
            else:
                assert got == want, (lo, hi, block_size)

    def test_strings(self):
        values = ["a", "b", "b", "a", "c", "a"]
        index = RangeModeIndex(values)
        assert index.query(0, 6) == ("a", 3)
        assert index.query(1, 3) == ("b", 2)
        # tie in [0, 4): a and b both twice; a appeared first
        assert index.query(0, 4) == ("a", 2)

    def test_empty_and_bounds(self):
        index = RangeModeIndex([])
        assert index.query(0, 0) == (None, 0)
        index = RangeModeIndex([5])
        assert index.query(0, 1) == (5, 1)
        assert index.query(-4, 99) == (5, 1)

    def test_memory_entries(self):
        index = RangeModeIndex(list(range(100)), block_size=10)
        assert index.memory_entries() == 10 * 11 // 2

    @given(st.lists(st.integers(0, 4), max_size=60),
           st.integers(0, 60), st.integers(0, 60), st.integers(1, 8))
    @settings(max_examples=120, deadline=None)
    def test_hypothesis(self, values, a, b, block):
        n = len(values)
        lo, hi = sorted((a % (n + 1), b % (n + 1)))
        index = RangeModeIndex(values, block_size=block)
        want = _oracle_mode(values, lo, hi, _first_seen(values))
        got = index.query(lo, hi)
        if want[0] is None:
            assert got == (None, 0)
        else:
            assert got == want


class TestIncrementalMode:
    def test_sliding_matches_oracle(self, rng):
        n = 150
        values = rng.integers(0, 6, size=n).tolist()
        first = _first_seen(values)
        start = np.maximum(np.arange(n) - 12, 0)
        end = np.arange(n) + 1
        got = windowed_mode(values, start, end)
        for i in range(n):
            want = _oracle_mode(values, int(start[i]), int(end[i]), first)
            assert got[i] == want[0]

    def test_non_monotonic(self, rng):
        n = 80
        values = rng.integers(0, 5, size=n).tolist()
        first = _first_seen(values)
        start = rng.integers(0, n, size=n)
        end = np.minimum(start + rng.integers(0, 25, size=n), n)
        got = windowed_mode(values, start, end)
        for i in range(n):
            want = _oracle_mode(values, int(start[i]), int(end[i]), first)
            assert got[i] == want[0]

    def test_work_counter(self, rng):
        values = rng.integers(0, 5, size=50).tolist()
        state = IncrementalMode(values)
        state.move_to(0, 50)
        assert state.work == 50
        state.move_to(10, 50)
        assert state.work == 60


class TestWindowedModeFunction:
    TABLE = make_window_table(n=100, seed=11)

    SPECS = [
        WindowSpec(partition_by=("g",), order_by=(OrderItem("o"),),
                   frame=FrameSpec.rows(preceding(8), current_row())),
        WindowSpec(order_by=(OrderItem("o"),),
                   frame=FrameSpec.rows(preceding(5), following(5))),
        WindowSpec(partition_by=("g",), order_by=(OrderItem("o"),),
                   frame=FrameSpec.rows(preceding(8), following(3),
                                        FrameExclusion.GROUP)),
    ]

    @pytest.mark.parametrize("spec_index", range(len(SPECS)))
    @pytest.mark.parametrize("algorithm", ["mst", "incremental"])
    def test_against_naive(self, spec_index, algorithm):
        spec = self.SPECS[spec_index]
        want = window_query(
            self.TABLE, [WindowCall("mode", ("x",), algorithm="naive")],
            spec).columns[-1].to_list()
        got = window_query(
            self.TABLE, [WindowCall("mode", ("x",), algorithm=algorithm)],
            spec).columns[-1].to_list()
        assert got == want

    def test_with_filter(self):
        spec = self.SPECS[0]
        want = window_query(
            self.TABLE, [WindowCall("mode", ("x",), filter_where="flag",
                                    algorithm="naive")],
            spec).columns[-1].to_list()
        got = window_query(
            self.TABLE, [WindowCall("mode", ("x",), filter_where="flag",
                                    algorithm="mst")],
            spec).columns[-1].to_list()
        assert got == want


class TestModeSql:
    def _catalog(self):
        table = Table.from_dict({
            "o": (DataType.INT64, [1, 2, 3, 4, 5, 6]),
            "v": (DataType.INT64, [7, 7, 9, 9, 9, 7]),
            "g": (DataType.STRING, ["a", "a", "a", "b", "b", "b"]),
        })
        return Catalog({"t": table})

    def test_windowed_mode(self):
        out = execute("""
            select mode(v) over (order by o rows between 2 preceding
              and current row) m
            from t order by o
        """, self._catalog())
        assert out.column("m").to_list() == [7, 7, 7, 9, 9, 9]

    def test_group_by_mode(self):
        out = execute("select g, mode() within group (order by v) m "
                      "from t group by g order by g", self._catalog())
        assert out.to_rows() == [("a", 7), ("b", 9)]

    def test_mode_direct_argument(self):
        out = execute("select mode(v) m from t", self._catalog())
        # 7 and 9 both appear 3 times; 7 appeared first
        assert out.row(0) == (7,)
