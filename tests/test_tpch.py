"""TPC-H-style generator: determinism, schemas, distributions."""

import datetime

import numpy as np

from repro.table import DataType
from repro.tpch import (
    TPCH_END_DATE,
    TPCH_START_DATE,
    lineitem,
    lineitem_arrays,
    orders,
    tpcc_results,
)


class TestLineitem:
    def test_deterministic(self):
        a = lineitem(500, seed=1)
        b = lineitem(500, seed=1)
        assert a.to_rows() == b.to_rows()
        c = lineitem(500, seed=2)
        assert a.to_rows() != c.to_rows()

    def test_schema(self):
        table = lineitem(10)
        assert table.schema.field("l_partkey").dtype is DataType.INT64
        assert table.schema.field("l_extendedprice").dtype \
            is DataType.FLOAT64
        assert table.schema.field("l_shipdate").dtype is DataType.DATE
        assert table.num_rows == 10

    def test_date_ordering_invariants(self):
        arrays = lineitem_arrays(2_000)
        # shipdate after orderdate, receipt after ship (TPC-H spec)
        assert (arrays["l_shipdate"] > 0).all()
        assert (arrays["l_receiptdate"] > arrays["l_shipdate"]).all()
        assert (arrays["l_receiptdate"] - arrays["l_shipdate"] <= 30).all()

    def test_dates_within_tpch_range(self):
        table = lineitem(300)
        for value in table.column("l_shipdate"):
            assert TPCH_START_DATE <= value <= TPCH_END_DATE + \
                datetime.timedelta(days=30)

    def test_price_formula(self):
        arrays = lineitem_arrays(1_000)
        ratio = arrays["l_extendedprice"] / arrays["l_quantity"]
        # retail price per unit is within the TPC-H formula's range
        assert ratio.min() >= 900.0 - 1
        assert ratio.max() <= 2100.0 + 1

    def test_partkey_duplication(self):
        """Distinct-count workloads rely on realistic duplicate factors."""
        arrays = lineitem_arrays(10_000)
        distinct = len(np.unique(arrays["l_partkey"]))
        assert distinct < 10_000
        assert distinct > 100


class TestOrders:
    def test_schema_and_key_uniqueness(self):
        table = orders(200)
        keys = table.column("o_orderkey").to_list()
        assert len(set(keys)) == 200
        assert table.schema.field("o_orderdate").dtype is DataType.DATE

    def test_custkey_repeats(self):
        table = orders(5_000)
        custs = table.column("o_custkey").to_list()
        assert len(set(custs)) < 5_000  # repeated customers => MAU > 1


class TestTpccResults:
    def test_shape(self):
        table = tpcc_results(50)
        assert table.num_rows == 50
        assert table.schema.names() == ["dbsystem", "tps",
                                        "submission_date"]

    def test_dates_sorted_and_tps_grows(self):
        table = tpcc_results(200)
        dates = table.column("submission_date").to_list()
        assert dates == sorted(dates)
        tps = np.asarray(table.column("tps").raw())
        # exponential growth: the last decade should dominate the first
        assert tps[-50:].mean() > tps[:50].mean() * 10
