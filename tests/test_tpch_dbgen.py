"""Loading dbgen .tbl files."""

import datetime

import pytest

from repro.errors import SchemaError
from repro.sql import Catalog, execute
from repro.table import DataType
from repro.tpch import load_lineitem, load_orders, load_tbl

_LINEITEM_ROW = ("1|155190|7706|1|17|21168.23|0.04|0.02|N|O|1996-03-13|"
                 "1996-02-12|1996-03-22|DELIVER IN PERSON|TRUCK|"
                 "egular courts above the|")
_ORDERS_ROW = ("1|36901|O|173665.47|1996-01-02|5-LOW|"
               "Clerk#000000951|0|nstructions sleep furiously among |")


@pytest.fixture
def lineitem_tbl(tmp_path):
    path = tmp_path / "lineitem.tbl"
    path.write_text("\n".join([_LINEITEM_ROW] * 5) + "\n")
    return path


def test_load_lineitem(lineitem_tbl):
    table = load_lineitem(lineitem_tbl)
    assert table.num_rows == 5
    assert table.num_columns == 16
    assert table.column("l_extendedprice")[0] == 21168.23
    assert table.column("l_shipdate")[0] == datetime.date(1996, 3, 13)
    assert table.column("l_shipmode")[0] == "TRUCK"
    assert table.schema.field("l_quantity").dtype is DataType.FLOAT64


def test_limit(lineitem_tbl):
    table = load_lineitem(lineitem_tbl, limit=2)
    assert table.num_rows == 2


def test_load_orders(tmp_path):
    path = tmp_path / "orders.tbl"
    path.write_text(_ORDERS_ROW + "\n")
    table = load_orders(path)
    assert table.column("o_orderdate")[0] == datetime.date(1996, 1, 2)
    assert table.column("o_totalprice")[0] == 173665.47


def test_blank_lines_skipped(tmp_path):
    path = tmp_path / "l.tbl"
    path.write_text(_LINEITEM_ROW + "\n\n" + _LINEITEM_ROW + "\n")
    assert load_lineitem(path).num_rows == 2


def test_field_count_checked(tmp_path):
    path = tmp_path / "bad.tbl"
    path.write_text("1|2|3|\n")
    with pytest.raises(SchemaError):
        load_lineitem(path)


def test_loaded_table_queryable(lineitem_tbl):
    """The paper's framed-median query runs against genuine dbgen rows."""
    table = load_lineitem(lineitem_tbl)
    out = execute("""
        select percentile_disc(0.5, order by l_extendedprice) over (
          order by l_shipdate rows between 2 preceding and current row) m
        from lineitem
    """, Catalog({"lineitem": table}))
    assert out.column("m").to_list() == [21168.23] * 5


def test_load_tbl_generic(tmp_path):
    path = tmp_path / "mini.tbl"
    path.write_text("7|x|2020-05-01|\n")
    table = load_tbl(path, [("a", DataType.INT64),
                            ("b", DataType.STRING),
                            ("c", DataType.DATE)])
    assert table.row(0) == (7, "x", datetime.date(2020, 5, 1))
