"""TPC-H golden suite: the engine vs a naive pure-Python reference.

Eighteen of the twenty-two TPC-H queries (see
:mod:`repro.tpch.queries` for the four blocked ones and the dialect
adaptations) run through the full relational frontend — joins, CTEs,
scalar/IN subqueries, GROUP BY/HAVING — at SF 0.01 and must be
**bit-identical** to the independent reference in
:mod:`repro.tpch.reference`: exact float equality, no tolerance.
That pins join output order, group order, aggregation fold order and
sort stability all at once.
"""

import pytest

from repro.sql.config import QueryOptions, SessionConfig
from repro.sql.executor import Session
from repro.tpch.queries import BLOCKED, QUERIES
from repro.tpch.reference import REFERENCE
from repro.tpch.tables import tpch_catalog, tpch_tables

SCALE = 0.01


@pytest.fixture(scope="module")
def tables():
    return tpch_tables(SCALE)


@pytest.fixture(scope="module")
def session(tables):
    session = Session(tpch_catalog(SCALE),
                      config=SessionConfig.from_env())
    yield session
    session.close()


def test_coverage_floor():
    """The acceptance floor: at least 12 of 22 queries run."""
    assert len(QUERIES) >= 12
    assert set(QUERIES) & set(BLOCKED) == set()
    assert len(QUERIES) + len(BLOCKED) == 22
    for reason in BLOCKED.values():
        assert len(reason) > 20, "blocked queries need honest reasons"


def test_every_query_has_a_reference():
    assert set(REFERENCE) == set(QUERIES)


@pytest.mark.parametrize("name", sorted(QUERIES,
                                        key=lambda q: int(q[1:])))
def test_bit_identical_to_reference(name, session, tables):
    engine = session.execute(QUERIES[name]).to_rows()
    reference = REFERENCE[name](tables)
    assert len(engine) == len(reference), name
    for i, (got, want) in enumerate(zip(engine, reference)):
        # Plain == — float results must match to the last bit.
        assert got == want, f"{name} row {i}: {got!r} != {want!r}"
    assert engine, f"{name} returned no rows — vacuous golden test"


class TestPlansAndTraces:
    def test_join_queries_plan_hash_joins(self, session):
        plan = session.explain(QUERIES["q3"])
        assert "HashJoin (inner, keys:" in plan
        assert "NestedLoopJoin" not in plan

    def test_six_way_join_plans_six_hash_joins(self, session):
        plan = session.explain(QUERIES["q5"])
        assert plan.count("HashJoin") == 5

    def test_cte_marks_scan_and_section(self, session):
        plan = session.explain(QUERIES["q7"])
        assert "CTE shipping:" in plan
        assert "Scan shipping (cte)" in plan

    def test_explain_analyze_annotates_join_and_cte(self, session):
        plan = session.explain(QUERIES["q7"], analyze=True)
        assert "HashJoin" in plan
        assert "build_rows=" in plan and "probe=" in plan
        assert "CTE shipping (actual: rows=" in plan

    def test_left_join_keeps_hash_strategy(self, session):
        plan = session.explain(QUERIES["q13"])
        assert "HashJoin (left, keys:" in plan
        assert "residual:" in plan

    def test_trace_spans_cover_join_and_cte(self, session):
        result = session.execute(
            QUERIES["q7"], options=QueryOptions(trace=True))
        trace = result.trace
        assert trace is not None
        builds = trace.find_all("join.build")
        probes = trace.find_all("join.probe")
        assert len(builds) == 5 and len(probes) == 5
        assert all(b.attrs["rows"] >= 0 for b in builds)
        assert sum(p.attrs["matches"] for p in probes) > 0
        ctes = trace.find_all("cte.materialize")
        assert [span.attrs["cte"] for span in ctes] == ["shipping"]
        assert ctes[0].attrs["rows"] > 0

    def test_governor_join_and_cte_reservations_release(self, session):
        assert session.execute(QUERIES["q7"]).to_rows()
        stats = session.memory.stats()
        # Hash builds and CTE materializations reserved (peak moved)
        # and released everything when the statement finished.
        assert stats.peak_bytes > 0
        assert stats.by_tag.get("join", 0) == 0
        assert stats.by_tag.get("cte", 0) == 0


class TestPreparedTpch:
    def test_parameterized_q6_variant(self, session):
        stmt = session.prepare("""
            SELECT sum(l_extendedprice * l_discount) AS revenue
            FROM lineitem
            WHERE l_shipdate >= $1 AND l_shipdate < $2
              AND l_discount BETWEEN $3 AND $4
              AND l_quantity < $5
        """)
        rows = stmt.execute(
            ["1994-01-01", "1995-01-01", 0.05, 0.07, 24]).to_rows()
        direct = session.execute(QUERIES["q6"]).to_rows()
        assert rows == direct
