"""Tenant policies: token buckets, quotas, priority capping."""

import pytest

from repro.errors import (
    ConfigurationError,
    TenantQuotaError,
    TenantRateLimitError,
)
from repro.resilience.context import SimulatedClock
from repro.serve import DEFAULT_POLICY, TenantPolicy, TenantRegistry


def _registry(**policies):
    clock = SimulatedClock()
    return TenantRegistry(policies=policies, clock=clock), clock


class TestPolicy:
    def test_defaults(self):
        assert DEFAULT_POLICY.priority == "interactive"
        assert DEFAULT_POLICY.rate is None

    @pytest.mark.parametrize("kwargs", [
        {"priority": "urgent"},
        {"rate": -1.0},
        {"burst": 0},
        {"max_concurrent": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            TenantPolicy(**kwargs)

    def test_cap_priority_is_downgrade_only(self):
        interactive = TenantPolicy(priority="interactive")
        batch = TenantPolicy(priority="batch")
        assert interactive.cap_priority(None) == "interactive"
        assert interactive.cap_priority("batch") == "batch"
        assert batch.cap_priority(None) == "batch"
        # A batch tenant cannot request its way up to interactive.
        assert batch.cap_priority("interactive") == "batch"

    def test_cap_priority_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            TenantPolicy().cap_priority("urgent")


class TestRateLimit:
    def test_burst_then_reject_then_refill(self):
        registry, clock = _registry(
            t=TenantPolicy(rate=1.0, burst=2))
        assert registry.acquire("t") == "interactive"
        registry.release("t")
        registry.acquire("t")
        registry.release("t")
        with pytest.raises(TenantRateLimitError) as info:
            registry.acquire("t")
        assert info.value.code == "TENANT_RATE_LIMITED"
        assert info.value.tenant == "t"
        assert info.value.retry_after == pytest.approx(1.0)
        clock.advance(1.0)  # one token refilled at rate=1/s
        registry.acquire("t")
        registry.release("t")

    def test_refill_caps_at_burst(self):
        registry, clock = _registry(t=TenantPolicy(rate=10.0, burst=3))
        clock.advance(3600.0)
        for _ in range(3):
            registry.acquire("t")
            registry.release("t")
        with pytest.raises(TenantRateLimitError):
            registry.acquire("t")

    def test_rate_zero_suspends_outright(self):
        registry, _ = _registry(t=TenantPolicy(rate=0.0))
        with pytest.raises(TenantRateLimitError) as info:
            registry.acquire("t")
        assert info.value.retry_after == 60.0

    def test_rate_none_never_limits(self):
        registry, _ = _registry()
        for _ in range(100):
            registry.acquire("unknown")
            registry.release("unknown")
        snap = registry.stats()[0]
        assert snap.admitted == 100 and snap.rate_limited == 0

    def test_rejection_consumes_nothing(self):
        registry, clock = _registry(t=TenantPolicy(rate=1.0, burst=1))
        registry.acquire("t")
        with pytest.raises(TenantRateLimitError):
            registry.acquire("t")
        registry.release("t")
        clock.advance(1.0)
        registry.acquire("t")  # the failed attempt did not burn a token


class TestQuota:
    def test_in_flight_quota(self):
        registry, _ = _registry(t=TenantPolicy(max_concurrent=2))
        registry.acquire("t")
        registry.acquire("t")
        with pytest.raises(TenantQuotaError) as info:
            registry.acquire("t")
        assert info.value.code == "TENANT_QUOTA_EXCEEDED"
        registry.release("t")
        registry.acquire("t")  # slot freed

    def test_admit_context_releases_on_error(self):
        registry, _ = _registry(t=TenantPolicy(max_concurrent=1))
        with pytest.raises(RuntimeError):
            with registry.admit("t"):
                raise RuntimeError("query blew up")
        with registry.admit("t") as priority:
            assert priority == "interactive"

    def test_tenants_are_isolated(self):
        registry, _ = _registry(a=TenantPolicy(rate=1.0, burst=1),
                                b=TenantPolicy(rate=1.0, burst=1))
        registry.acquire("a")
        registry.acquire("b")  # a's empty bucket does not affect b


class TestRegistry:
    def test_set_policy_resets_state(self):
        registry, _ = _registry()
        registry.acquire("t")
        registry.set_policy("t", TenantPolicy(rate=0.0))
        assert registry.policy_for("t").rate == 0.0
        with pytest.raises(TenantRateLimitError):
            registry.acquire("t")

    def test_stats_snapshot(self):
        registry, _ = _registry(b=TenantPolicy(max_concurrent=1))
        registry.acquire("a")
        registry.acquire("b")
        with pytest.raises(TenantQuotaError):
            registry.acquire("b")
        snaps = {s.tenant: s for s in registry.stats()}
        assert sorted(snaps) == ["a", "b"]
        assert snaps["a"].in_flight == 1
        assert snaps["b"].quota_rejected == 1
        assert snaps["b"].peak_in_flight == 1
        payload = snaps["a"].to_dict()
        assert payload["admitted"] == 1
