"""WindowCall validation."""

import pytest

from repro.errors import WindowFunctionError
from repro.mst.aggregates import SUM
from repro.window.calls import WindowCall
from repro.window.frame import OrderItem


def test_unknown_function():
    with pytest.raises(WindowFunctionError):
        WindowCall("frobnicate")


def test_unknown_option():
    with pytest.raises(WindowFunctionError):
        WindowCall("count", ("x",), nonsense=True)


def test_percentile_fraction_required():
    with pytest.raises(WindowFunctionError):
        WindowCall("percentile_disc", ("x",))
    with pytest.raises(WindowFunctionError):
        WindowCall("percentile_disc", ("x",), fraction=1.5)
    WindowCall("percentile_disc", ("x",), fraction=0.0)
    WindowCall("median", ("x",))  # median needs no fraction


def test_distinct_only_for_aggregates():
    with pytest.raises(WindowFunctionError):
        WindowCall("rank", distinct=True)
    WindowCall("sum", ("x",), distinct=True)


def test_nth_value_requires_position():
    with pytest.raises(WindowFunctionError):
        WindowCall("nth_value", ("x",))
    with pytest.raises(WindowFunctionError):
        WindowCall("nth_value", ("x",), nth=0)
    WindowCall("nth_value", ("x",), nth=3, from_last=True)


def test_ntile_requires_buckets():
    with pytest.raises(WindowFunctionError):
        WindowCall("ntile")
    WindowCall("ntile", buckets=4)


def test_lead_offset_nonnegative():
    with pytest.raises(WindowFunctionError):
        WindowCall("lead", ("x",), offset=-1)
    WindowCall("lag", ("x",), offset=0)


def test_argument_required():
    with pytest.raises(WindowFunctionError):
        WindowCall("sum")
    with pytest.raises(WindowFunctionError):
        WindowCall("first_value")
    WindowCall("count_star")
    WindowCall("row_number")


def test_udaf_requires_spec():
    with pytest.raises(WindowFunctionError):
        WindowCall("udaf", ("x",))
    WindowCall("udaf", ("x",), udaf=SUM)


def test_family_classification():
    assert WindowCall("count", ("x",)).family == "aggregate"
    assert WindowCall("count", ("x",), distinct=True).family == "distinct"
    assert WindowCall("rank").family == "rank"
    assert WindowCall("median", ("x",)).family == "percentile"
    assert WindowCall("first_value", ("x",)).family == "value"
    assert WindowCall("lead", ("x",)).family == "navigation"


def test_output_name():
    assert WindowCall("rank").output_name == "rank"
    assert WindowCall("rank", output="r").output_name == "r"


def test_order_by_tuple_normalised():
    call = WindowCall("rank", order_by=[OrderItem("x")])
    assert isinstance(call.order_by, tuple)
